package core

// binwire.go is the compact binary report encoding the fleet ingestion
// service negotiates next to JSON. The JSON document (reportio.go) repeats
// every class/method/action string in full on every upload; at millions of
// devices the ingest path is dominated by decode allocations and those
// repeated strings. The binary format rides a per-device symbol dictionary
// instead: a device sends each distinct string once, as a dictionary
// *delta*, and refers to it by a dense uint32 ref thereafter — the same
// idea as internal/stack.Symtab, applied to the wire.
//
// Document layout (all integers are unsigned LEB128 varints unless noted):
//
//	magic    "HDB1" (4 bytes)
//	version  u8 (= 1)
//	flags    u8 (bit0: health section present)
//	device   str             — uploader identity for dictionary affinity;
//	                           "" marks a stateless, self-contained document
//	dictBase varint          — refs the encoder assumes the decoder already
//	                           holds; 0 resets the dictionary (full resync)
//	dict     varint count, count × str
//	                         — delta strings, assigned refs dictBase+1 …
//	                           dictBase+count in order
//	entries  varint count, count × entry
//	health   10 varints      — only when flags bit0 is set
//	exts     one section per set flag bit above bit0, ascending bit order:
//	         varint sectionLen, sectionLen bytes — a decoder that does not
//	         know a bit skips its section by length, so the format extends
//	         without a version bump (bit0's health block predates the
//	         scheme and stays an unprefixed 10-varint block forever)
//
//	causal section (bit1) :=
//	         workerStacksLost causalFallbacks
//	         varint chainedCount, count × (entryIndex kindRef
//	         originActionRef originSiteRef sharePermille)
//	         — chain provenance for entries diagnosed through an async
//	         chain, indexed into the entries array in strictly ascending
//	         order; the two extra health counters live here because the
//	         legacy health block's field count is frozen
//
//	str   := varint len, len bytes (UTF-8; the decoder rejects invalid UTF-8
//	         so a binary upload can never smuggle strings the JSON path
//	         would mangle)
//	entry := appRef actionRef rootRef fileRef line eflags(u8) hangs
//	         ndev ndev×devRef maxResponseNs sumResponseNs
//
// Canonical form: the encoder walks entries in Report.Entries() order
// (hangs descending, then key ascending), devices sorted ascending within
// an entry, and assigns dictionary refs in first-use order over that walk.
// Encoding is therefore a pure function of report content and prior
// dictionary state — encode→decode→encode round-trips byte-identically,
// which is what makes the encoding usable as a canonical content hash for
// upload dedup (fleet.ReportUploadID).
//
// Delta protocol: the decoder tracks the device's dictionary across
// documents. A document whose dictBase does not equal the decoder's
// current dictionary length signals divergence (server restart, evicted
// dictionary, lost upload) and fails with *DictMismatchError; the client
// recovers by resetting its encoder and resending with a full dictionary
// (dictBase 0), which also resets the decoder side. Dictionary deltas are
// committed only after the whole document validates, so a rejected upload
// never corrupts the device's dictionary state.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"unicode/utf8"

	"hangdoctor/internal/simclock"
)

const (
	// BinaryContentType negotiates the binary report encoding on
	// /v1/upload and is served by /v1/snapshot.
	BinaryContentType = "application/x-hangdoctor-report"

	binMagic        = "HDB1"
	binWireVersion  = 1
	binFlagHealth   = 1 << 0
	binFlagCausal   = 1 << 1
	binEntryViaCall = 1 << 0
	maxBinStringLen = 1 << 20 // longest single dictionary string
	maxBinPrealloc  = 4096    // cap on count-driven preallocation
	binHealthFields = 10
	binMinHeaderLen = len(binMagic) + 2
)

// DictMismatchError reports a dictionary-delta document whose base does not
// match the decoder's dictionary. The client should reset its encoder and
// resend with a full dictionary (the HTTP layer maps this to 409).
type DictMismatchError struct {
	// Base is what the document assumed; Have is the decoder's length.
	Base, Have int
}

func (e *DictMismatchError) Error() string {
	return fmt.Sprintf("core: dictionary mismatch: document assumes %d entries, decoder holds %d (resend with a full dictionary)", e.Base, e.Have)
}

// ---------------------------------------------------------------------------
// Varint helpers (unsigned LEB128 over a byte slice — no readers, no allocs)

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// errShort is the generic truncation error; decode paths wrap it with
// context.
var errShort = errors.New("core: binary report truncated")

// binReader walks a document slice; all reads are bounds-checked and
// allocation-free.
type binReader struct {
	buf []byte
	off int
}

func (r *binReader) remaining() int { return len(r.buf) - r.off }

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, errShort
	}
	r.off += n
	return v, nil
}

// length reads a count/length field bounded by the bytes that remain — a
// corrupt count can therefore never drive an allocation bigger than the
// document itself.
func (r *binReader) length(what string) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, fmt.Errorf("core: binary report: %s count: %w", what, err)
	}
	if v > uint64(r.remaining()) {
		return 0, fmt.Errorf("core: binary report: %s count %d exceeds remaining %d bytes", what, v, r.remaining())
	}
	return int(v), nil
}

func (r *binReader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, errShort
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

// str reads a length-prefixed string. The returned string aliases a fresh
// allocation (strings are long-lived dictionary state).
func (r *binReader) str() (string, error) { return r.strMemo("") }

// strMemo is str that returns memo (no allocation) when the encoded bytes
// equal it — the decoder memoizes the per-device header string this way.
func (r *binReader) strMemo(memo string) (string, error) {
	n, err := r.length("string")
	if err != nil {
		return "", err
	}
	if n > maxBinStringLen {
		return "", fmt.Errorf("core: binary report: string length %d exceeds cap %d", n, maxBinStringLen)
	}
	raw := r.buf[r.off : r.off+n]
	if !utf8.Valid(raw) {
		return "", errors.New("core: binary report: string is not valid UTF-8")
	}
	r.off += n
	if memo != "" && string(raw) == memo {
		return memo, nil
	}
	return string(raw), nil
}

// ---------------------------------------------------------------------------
// Encoder

// BinaryEncoder turns reports into binary documents, carrying the device's
// dictionary across calls so repeated strings ride as uint32 refs. One
// encoder belongs to one upload stream (one device); it is not safe for
// concurrent use.
type BinaryEncoder struct {
	device string
	refs   map[string]uint32 // string -> 1-based dictionary position
	base   int               // positions the decoder held before the next doc
	buf    []byte
	devs   []string // scratch for sorting an entry's device set
	delta  []string // scratch for the current document's new strings
	ext    []byte   // scratch for length-prefixed extension sections
}

// NewBinaryEncoder returns an encoder for one device's upload stream.
// device "" produces stateless self-contained documents (every document
// carries its full dictionary) — the form used for WAL fragments, node
// snapshots, and canonical content hashing.
func NewBinaryEncoder(device string) *BinaryEncoder {
	return &BinaryEncoder{device: device, refs: map[string]uint32{}}
}

// DictLen returns the number of dictionary strings the encoder has
// committed (and assumes the decoder holds).
func (e *BinaryEncoder) DictLen() int { return e.base }

// Reset forgets the dictionary. The next Encode emits a full dictionary
// with dictBase 0, which instructs the decoder to reset too — the recovery
// step after a dictionary-mismatch rejection.
func (e *BinaryEncoder) Reset() {
	e.refs = map[string]uint32{}
	e.base = 0
}

// Encode serializes rep in canonical form, emitting only strings the
// decoder has not seen as a dictionary delta, and commits the delta (the
// decoder commits on successful decode; a client whose upload is lost
// recovers via the mismatch/Reset protocol). The returned slice is reused
// by the next Encode call — send or copy it first.
func (e *BinaryEncoder) Encode(rep *Report) []byte {
	e.buf = e.appendDoc(e.buf[:0], rep)
	e.base = len(e.refs)
	return e.buf
}

// AppendReportBinary appends rep's canonical stateless encoding (full
// dictionary, device "") to dst — the one-shot form used for content
// hashing, WAL fragments, and node snapshots.
func AppendReportBinary(dst []byte, rep *Report) []byte {
	e := NewBinaryEncoder("")
	return e.appendDoc(dst, rep)
}

// ref returns s's dictionary position, assigning the next one (and
// recording s in the pending delta) on first sight.
func (e *BinaryEncoder) ref(s string) uint32 {
	if id, ok := e.refs[s]; ok {
		return id
	}
	id := uint32(len(e.refs) + 1)
	e.refs[s] = id
	e.delta = append(e.delta, s)
	return id
}

func appendStr(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func (e *BinaryEncoder) appendDoc(dst []byte, rep *Report) []byte {
	entries := rep.Entries()
	// Pass 1: assign refs in first-use order over the canonical walk, so
	// the delta section can be written before the entries that use it.
	e.delta = e.delta[:0]
	type encEntry struct {
		app, action, root, file uint32
		devs                    []uint32
		chained                 bool
		kind, corigin, csite    uint32
	}
	encs := make([]encEntry, len(entries))
	devRefs := make([]uint32, 0, len(entries))
	chained := 0
	for i, en := range entries {
		ee := encEntry{
			app:    e.ref(en.App),
			action: e.ref(en.ActionUID),
			root:   e.ref(en.RootCause),
			file:   e.ref(en.File),
		}
		e.devs = e.devs[:0]
		for d := range en.Devices {
			e.devs = append(e.devs, d)
		}
		sort.Strings(e.devs)
		start := len(devRefs)
		for _, d := range e.devs {
			devRefs = append(devRefs, e.ref(d))
		}
		ee.devs = devRefs[start:len(devRefs):len(devRefs)]
		if !en.Chain.Zero() {
			// Chain strings join the same first-use dictionary walk, right
			// after the entry's device refs, so the delta order stays a pure
			// function of report content.
			ee.chained = true
			ee.kind = e.ref(en.Chain.Kind)
			ee.corigin = e.ref(en.Chain.OriginAction)
			ee.csite = e.ref(en.Chain.OriginSite)
			chained++
		}
		encs[i] = ee
	}

	// Pass 2: write the document.
	dst = append(dst, binMagic...)
	dst = append(dst, binWireVersion)
	flags := byte(0)
	if !rep.Health.Zero() {
		flags |= binFlagHealth
	}
	if chained > 0 || rep.Health.WorkerStacksLost != 0 || rep.Health.CausalFallbacks != 0 {
		flags |= binFlagCausal
	}
	dst = append(dst, flags)
	dst = appendStr(dst, e.device)
	dst = appendUvarint(dst, uint64(e.base))
	dst = appendUvarint(dst, uint64(len(e.delta)))
	for _, s := range e.delta {
		dst = appendStr(dst, s)
	}
	dst = appendUvarint(dst, uint64(len(entries)))
	for i, en := range entries {
		ee := &encs[i]
		dst = appendUvarint(dst, uint64(ee.app))
		dst = appendUvarint(dst, uint64(ee.action))
		dst = appendUvarint(dst, uint64(ee.root))
		dst = appendUvarint(dst, uint64(ee.file))
		dst = appendUvarint(dst, uint64(en.Line))
		eflags := byte(0)
		if en.ViaCaller {
			eflags |= binEntryViaCall
		}
		dst = append(dst, eflags)
		dst = appendUvarint(dst, uint64(en.Hangs))
		dst = appendUvarint(dst, uint64(len(ee.devs)))
		for _, d := range ee.devs {
			dst = appendUvarint(dst, uint64(d))
		}
		dst = appendUvarint(dst, uint64(en.MaxResponse))
		dst = appendUvarint(dst, uint64(en.SumResponse))
	}
	if flags&binFlagHealth != 0 {
		h := rep.Health
		for _, v := range [binHealthFields]int{
			h.PerfOpenFailures, h.PerfOpenRetries, h.CountersLost,
			h.RenderLost, h.StacksDropped, h.StacksTruncated,
			h.SamplerOverruns, h.VerdictsDeferred, h.LowConfidence,
			h.Quarantines,
		} {
			dst = appendUvarint(dst, uint64(v))
		}
	}
	if flags&binFlagCausal != 0 {
		// Extension sections are length-prefixed; build the body in scratch
		// first so the prefix is exact.
		e.ext = e.ext[:0]
		e.ext = appendUvarint(e.ext, uint64(rep.Health.WorkerStacksLost))
		e.ext = appendUvarint(e.ext, uint64(rep.Health.CausalFallbacks))
		e.ext = appendUvarint(e.ext, uint64(chained))
		for i := range encs {
			ee := &encs[i]
			if !ee.chained {
				continue
			}
			e.ext = appendUvarint(e.ext, uint64(i))
			e.ext = appendUvarint(e.ext, uint64(ee.kind))
			e.ext = appendUvarint(e.ext, uint64(ee.corigin))
			e.ext = appendUvarint(e.ext, uint64(ee.csite))
			e.ext = appendUvarint(e.ext, uint64(entries[i].Chain.SharePermille))
		}
		dst = appendUvarint(dst, uint64(len(e.ext)))
		dst = append(dst, e.ext...)
	}
	e.delta = e.delta[:0]
	return dst
}

// ---------------------------------------------------------------------------
// Decoded view

// WireEntry is one decoded binary report entry with every string resolved
// against the device dictionary. Strings are shared with the dictionary
// (immutable), so holding a WireEntry does not pin the document bytes.
type WireEntry struct {
	// Key is the precomputed entry identity (the same composite key the
	// JSON import builds), cached per (app, action, root) ref triple in the
	// dictionary so steady-state decoding never concatenates.
	Key         string
	App         string
	ActionUID   string
	RootCause   string
	File        string
	Line        int
	ViaCaller   bool
	Hangs       int
	Devices     []string
	MaxResponse simclock.Duration
	SumResponse simclock.Duration
	// Chain is the entry's causal-chain provenance from the causal extension
	// section (zero when absent or when the decoder skipped the section).
	Chain CausalChain
}

// WireReport is one decoded binary upload: the uploading device, its
// entries in document order, and the optional health section.
type WireReport struct {
	Device  string
	Entries []WireEntry
	Health  Health
}

// TotalHangs sums the diagnosed hangs across entries.
func (wr *WireReport) TotalHangs() int {
	n := 0
	for i := range wr.Entries {
		n += wr.Entries[i].Hangs
	}
	return n
}

// Report materializes the wire view as a standalone Report.
func (wr *WireReport) Report() *Report {
	out := NewReport()
	out.MergeWire(wr)
	return out
}

// MergeWire folds a decoded binary upload into r without intermediate maps
// or re-keying: entry keys come precomputed from the dictionary, so merging
// into an entry the report already holds allocates nothing.
func (r *Report) MergeWire(wr *WireReport) {
	r.Health.Add(wr.Health)
	r.MergeWireEntries(wr.Entries)
}

// MergeWireEntries merges decoded entries into r. It is the shard-side hot
// path of binary ingest: a fragment of wire entries goes straight from the
// decoder into the shard's report.
func (r *Report) MergeWireEntries(entries []WireEntry) {
	for i := range entries {
		we := &entries[i]
		e, ok := r.entries[we.Key]
		if !ok {
			e = &ReportEntry{
				App: we.App, ActionUID: we.ActionUID, RootCause: we.RootCause,
				File: we.File, Line: we.Line, ViaCaller: we.ViaCaller,
				Devices: make(map[string]bool, len(we.Devices)),
			}
			r.entries[we.Key] = e
		}
		e.Hangs += we.Hangs
		r.totalHangs += we.Hangs
		for _, d := range we.Devices {
			e.Devices[d] = true
		}
		e.SumResponse += we.SumResponse
		if we.MaxResponse > e.MaxResponse {
			e.MaxResponse = we.MaxResponse
		}
		e.Chain = mergeChain(e.Chain, we.Chain)
	}
}

// Split partitions a decoded binary upload by ShardIndexKey of each entry,
// mirroring Report.Split without materializing an intermediate report: a
// nil slice means the shard gets nothing, and the health section (when
// present) rides with shard 0. Entries are referenced, not copied — the
// caller must not reuse the WireReport afterwards.
func (wr *WireReport) Split(shards int) (entries [][]WireEntry, health Health) {
	if shards <= 1 {
		shards = 1
	}
	entries = make([][]WireEntry, shards)
	for i := range wr.Entries {
		s := ShardIndexKey(wr.Entries[i].Key, shards)
		entries[s] = append(entries[s], wr.Entries[i])
	}
	return entries, wr.Health
}

// ---------------------------------------------------------------------------
// Decoder

// keyTriple identifies one (app, action, root) ref combination in a
// device's dictionary; the composite entry key string is cached per triple.
type keyTriple [3]uint32

// BinaryDecoder decodes one device's binary documents, mirroring the
// dictionary the device's encoder builds. It is not safe for concurrent
// use; the fleet layer serializes per-device decoding.
type BinaryDecoder struct {
	strs []string             // dictionary: ref i at strs[i-1]
	keys map[keyTriple]string // composite entry-key cache

	// extMask is the set of extension flag bits this decoder understands;
	// sections for bits outside it are skipped by length. Tests restrict it
	// to emulate decoders predating an extension.
	extMask byte

	// Scratch reused by DecodeScratch (and the pending-delta staging that
	// both decode paths share).
	pending []string
	wr      WireReport
	devBuf  []string
	device  string // memo of the last header device (avoids re-allocating it)
}

// NewBinaryDecoder returns an empty-dictionary decoder.
func NewBinaryDecoder() *BinaryDecoder {
	return &BinaryDecoder{keys: map[keyTriple]string{}, extMask: binFlagCausal}
}

// restrictExtensions narrows the decoder to the given extension bits —
// the compatibility tests use it to prove a decoder that predates the
// causal section still parses documents carrying one.
func (d *BinaryDecoder) restrictExtensions(mask byte) { d.extMask = mask }

// DictLen returns the number of committed dictionary strings.
func (d *BinaryDecoder) DictLen() int { return len(d.strs) }

// Decode parses one document, returning a view whose slices are freshly
// allocated (safe to retain and hand across goroutines). The dictionary
// delta commits only if the whole document validates.
func (d *BinaryDecoder) Decode(doc []byte) (*WireReport, error) {
	wr := &WireReport{}
	if err := d.decodeInto(doc, wr, nil); err != nil {
		return nil, err
	}
	return wr, nil
}

// DecodeScratch is Decode reusing the decoder's internal buffers: the
// returned view (and everything it references except dictionary strings)
// is valid only until the next call. Steady-state decoding through this
// path does not allocate.
func (d *BinaryDecoder) DecodeScratch(doc []byte) (*WireReport, error) {
	d.devBuf = d.devBuf[:0]
	d.wr.Entries = d.wr.Entries[:0]
	if err := d.decodeInto(doc, &d.wr, &d.devBuf); err != nil {
		return nil, err
	}
	return &d.wr, nil
}

// resolve maps a 1-based ref onto the committed dictionary plus the
// document's pending delta.
func (d *BinaryDecoder) resolve(ref uint64) (string, error) {
	if ref == 0 {
		return "", errors.New("core: binary report: ref 0 is invalid")
	}
	i := ref - 1
	if i < uint64(len(d.strs)) {
		return d.strs[i], nil
	}
	if i < uint64(len(d.strs)+len(d.pending)) {
		return d.pending[i-uint64(len(d.strs))], nil
	}
	return "", fmt.Errorf("core: binary report: ref %d beyond dictionary size %d", ref, len(d.strs)+len(d.pending))
}

// entryKeyFor returns the composite key for an (app, action, root) triple,
// serving repeats from the per-dictionary cache. Triples that involve
// still-pending refs are built fresh and cached only after the delta
// commits (via the next document), so a rejected document never poisons
// the cache.
func (d *BinaryDecoder) entryKeyFor(appRef, actionRef, rootRef uint64, app, action, root string) string {
	committed := uint64(len(d.strs))
	if appRef <= committed && actionRef <= committed && rootRef <= committed {
		t := keyTriple{uint32(appRef), uint32(actionRef), uint32(rootRef)}
		if k, ok := d.keys[t]; ok {
			return k
		}
		k := entryKey(app, action, root)
		d.keys[t] = k
		return k
	}
	return entryKey(app, action, root)
}

// decodeInto is the shared decode body. devBuf, when non-nil, is a reusable
// flat arena for entry device slices; nil means allocate fresh.
func (d *BinaryDecoder) decodeInto(doc []byte, wr *WireReport, devBuf *[]string) error {
	if len(doc) < binMinHeaderLen || string(doc[:len(binMagic)]) != binMagic {
		return errors.New("core: binary report: bad magic")
	}
	if v := doc[len(binMagic)]; v != binWireVersion {
		return fmt.Errorf("core: unsupported binary report version %d", v)
	}
	flags := doc[len(binMagic)+1]
	r := &binReader{buf: doc, off: binMinHeaderLen}

	device, err := r.strMemo(d.device)
	if err != nil {
		return fmt.Errorf("core: binary report: device: %w", err)
	}
	d.device = device

	base, err := r.uvarint()
	if err != nil {
		return fmt.Errorf("core: binary report: dictBase: %w", err)
	}
	if base == 0 && len(d.strs) > 0 {
		// Full resync: the client reset its encoder (or is a different
		// process entirely); drop the old dictionary and key cache.
		d.strs = d.strs[:0]
		d.keys = map[keyTriple]string{}
	}
	if base != uint64(len(d.strs)) {
		return &DictMismatchError{Base: int(base), Have: len(d.strs)}
	}

	nDelta, err := r.length("dictionary")
	if err != nil {
		return err
	}
	d.pending = d.pending[:0]
	if cap(d.pending) < nDelta && nDelta <= maxBinPrealloc {
		d.pending = make([]string, 0, nDelta)
	}
	for i := 0; i < nDelta; i++ {
		s, err := r.str()
		if err != nil {
			return fmt.Errorf("core: binary report: dictionary string %d: %w", i, err)
		}
		d.pending = append(d.pending, s)
	}

	nEntries, err := r.length("entry")
	if err != nil {
		return err
	}
	entries := wr.Entries[:0]
	if cap(entries) < nEntries && nEntries <= maxBinPrealloc {
		entries = make([]WireEntry, 0, nEntries)
	}
	var devs []string
	if devBuf != nil {
		devs = (*devBuf)[:0]
	}
	for i := 0; i < nEntries; i++ {
		var we WireEntry
		var refs [4]uint64
		for j := range refs {
			if refs[j], err = r.uvarint(); err != nil {
				return fmt.Errorf("core: binary report: entry %d refs: %w", i, err)
			}
		}
		if we.App, err = d.resolve(refs[0]); err != nil {
			return err
		}
		if we.ActionUID, err = d.resolve(refs[1]); err != nil {
			return err
		}
		if we.RootCause, err = d.resolve(refs[2]); err != nil {
			return err
		}
		if we.File, err = d.resolve(refs[3]); err != nil {
			return err
		}
		if we.RootCause == "" {
			return fmt.Errorf("core: entry for app %q action %q has empty root cause", we.App, we.ActionUID)
		}
		we.Key = d.entryKeyFor(refs[0], refs[1], refs[2], we.App, we.ActionUID, we.RootCause)
		line, err := r.uvarint()
		if err != nil || line > math.MaxInt32 {
			return fmt.Errorf("core: binary report: entry %d line: invalid", i)
		}
		we.Line = int(line)
		eflags, err := r.byte()
		if err != nil {
			return fmt.Errorf("core: binary report: entry %d flags: %w", i, err)
		}
		we.ViaCaller = eflags&binEntryViaCall != 0
		hangs, err := r.uvarint()
		if err != nil || hangs == 0 || hangs > math.MaxInt32 {
			return fmt.Errorf("core: entry %s/%s has invalid hang count", we.App, we.RootCause)
		}
		we.Hangs = int(hangs)
		nDev, err := r.length("device")
		if err != nil {
			return fmt.Errorf("core: binary report: entry %d: %w", i, err)
		}
		start := len(devs)
		for j := 0; j < nDev; j++ {
			ref, err := r.uvarint()
			if err != nil {
				return fmt.Errorf("core: binary report: entry %d device ref: %w", i, err)
			}
			dev, err := d.resolve(ref)
			if err != nil {
				return err
			}
			devs = append(devs, dev)
		}
		we.Devices = devs[start:len(devs):len(devs)]
		maxR, err := r.uvarint()
		if err != nil || maxR > math.MaxInt64 {
			return fmt.Errorf("core: binary report: entry %d max response: invalid", i)
		}
		sumR, err := r.uvarint()
		if err != nil || sumR > math.MaxInt64 {
			return fmt.Errorf("core: binary report: entry %d response sum: invalid", i)
		}
		we.MaxResponse = simclock.Duration(maxR)
		we.SumResponse = simclock.Duration(sumR)
		entries = append(entries, we)
	}

	var health Health
	if flags&binFlagHealth != 0 {
		var vals [binHealthFields]int
		for i := range vals {
			v, err := r.uvarint()
			if err != nil || v > math.MaxInt32 {
				return fmt.Errorf("core: binary report: health field %d: invalid", i)
			}
			vals[i] = int(v)
		}
		health = Health{
			PerfOpenFailures: vals[0], PerfOpenRetries: vals[1],
			CountersLost: vals[2], RenderLost: vals[3],
			StacksDropped: vals[4], StacksTruncated: vals[5],
			SamplerOverruns: vals[6], VerdictsDeferred: vals[7],
			LowConfidence: vals[8], Quarantines: vals[9],
		}
	}
	// Extension sections, one per set flag bit above bit0 in ascending bit
	// order. Bits outside extMask are skipped by their length prefix.
	for bit := byte(binFlagHealth << 1); bit != 0; bit <<= 1 {
		if flags&bit == 0 {
			continue
		}
		n, err := r.length("extension section")
		if err != nil {
			return err
		}
		if bit&d.extMask == 0 {
			r.off += n
			continue
		}
		sr := &binReader{buf: r.buf[:r.off+n], off: r.off}
		switch bit {
		case binFlagCausal:
			if err := d.decodeCausal(sr, entries, &health); err != nil {
				return err
			}
		}
		if sr.off != r.off+n {
			return fmt.Errorf("core: binary report: extension bit %d: %d bytes left over", bit, r.off+n-sr.off)
		}
		r.off = sr.off
	}
	if r.remaining() != 0 {
		return fmt.Errorf("core: binary report: %d trailing bytes after document", r.remaining())
	}

	// Everything validated: commit the delta and publish the view. Because
	// device slices were arena-packed, the entries' Devices subslices are
	// already final.
	d.strs = append(d.strs, d.pending...)
	d.pending = d.pending[:0]
	wr.Device = device
	wr.Entries = entries
	wr.Health = health
	if devBuf != nil {
		*devBuf = devs
	}
	return nil
}

// decodeCausal parses the causal extension section into the two post-legacy
// health counters and per-entry chain provenance.
func (d *BinaryDecoder) decodeCausal(r *binReader, entries []WireEntry, health *Health) error {
	wsl, err := r.uvarint()
	if err != nil || wsl > math.MaxInt32 {
		return errors.New("core: binary report: causal section: worker stacks lost: invalid")
	}
	cf, err := r.uvarint()
	if err != nil || cf > math.MaxInt32 {
		return errors.New("core: binary report: causal section: causal fallbacks: invalid")
	}
	health.WorkerStacksLost = int(wsl)
	health.CausalFallbacks = int(cf)
	nChained, err := r.length("chained entry")
	if err != nil {
		return err
	}
	prev := -1
	for i := 0; i < nChained; i++ {
		idx, err := r.uvarint()
		if err != nil {
			return fmt.Errorf("core: binary report: chain %d entry index: %w", i, err)
		}
		// Strictly ascending indices keep the section canonical (and reject
		// duplicate attributions for one entry).
		if idx >= uint64(len(entries)) || int(idx) <= prev {
			return fmt.Errorf("core: binary report: chain %d entry index %d out of order or beyond %d entries", i, idx, len(entries))
		}
		prev = int(idx)
		var refs [3]uint64
		for j := range refs {
			if refs[j], err = r.uvarint(); err != nil {
				return fmt.Errorf("core: binary report: chain %d refs: %w", i, err)
			}
		}
		var chain CausalChain
		if chain.Kind, err = d.resolve(refs[0]); err != nil {
			return err
		}
		if chain.OriginAction, err = d.resolve(refs[1]); err != nil {
			return err
		}
		if chain.OriginSite, err = d.resolve(refs[2]); err != nil {
			return err
		}
		share, err := r.uvarint()
		if err != nil || share > 1000 {
			return fmt.Errorf("core: binary report: chain %d share out of [0,1000]", i)
		}
		chain.SharePermille = int(share)
		if chain.Zero() {
			// A zero chain must be encoded by omission, or re-encoding would
			// drop the row and break the canonical fixed point.
			return fmt.Errorf("core: binary report: chain %d is all-zero", i)
		}
		entries[idx].Chain = chain
	}
	return nil
}

// PeekBinaryDevice extracts the device identity from a binary document
// header without decoding the body — the fleet layer uses it to pick the
// per-device dictionary before full decoding.
func PeekBinaryDevice(doc []byte) (string, error) {
	if len(doc) < binMinHeaderLen || string(doc[:len(binMagic)]) != binMagic {
		return "", errors.New("core: binary report: bad magic")
	}
	if v := doc[len(binMagic)]; v != binWireVersion {
		return "", fmt.Errorf("core: unsupported binary report version %d", v)
	}
	r := &binReader{buf: doc, off: binMinHeaderLen}
	dev, err := r.str()
	if err != nil {
		return "", fmt.Errorf("core: binary report: device: %w", err)
	}
	return dev, nil
}

// IsBinaryReport reports whether doc starts with the binary report magic —
// a cheap sniff for paths that accept either encoding.
func IsBinaryReport(doc []byte) bool {
	return len(doc) >= len(binMagic) && string(doc[:len(binMagic)]) == binMagic
}
