package core

// docwriter.go is the zero-allocation client-side counterpart of
// BinaryEncoder: a writer for callers that already know their dictionary
// refs. BinaryEncoder owns the whole canonical pipeline — it walks a
// *Report, sorts entries and devices, interns strings in a map, and
// assigns refs in first-use order — which is exactly right for real
// devices but far too heavy for a load generator that keeps per-device
// ref assignments precomputed (internal/sim holds them in packed
// templates). DocWriter skips all of that: the caller supplies refs,
// line numbers, and counters directly and the writer just serializes
// them in wire order into a reusable buffer. Steady state allocates
// nothing once the buffer has grown to document size.
//
// The caller owns the protocol invariants the encoder normally
// guarantees: refs must resolve against the decoder's committed
// dictionary plus this document's delta (delta strings take refs
// dictBase+1…dictBase+len(delta) in order), the entry count passed to
// Begin must match the Entry calls made, and hang counts must be ≥ 1
// with a non-empty root cause. The decoder validates all of it, so a
// malformed document is rejected server-side, never silently merged.
// DocWriter never emits a health section (flags stay 0): synthetic
// device ticks carry entries only.

import "hangdoctor/internal/simclock"

// DocWriter serializes binary report documents from caller-managed
// dictionary refs. The zero value is ready to use; one writer belongs to
// one goroutine.
type DocWriter struct {
	buf     []byte
	entries int // declared in Begin, counted down by Entry
}

// Begin resets the writer and writes the document header: magic, version,
// device identity, the dictionary base the decoder is assumed to hold,
// the delta strings (taking refs dictBase+1… in order), and the entry
// count. Exactly `entries` Entry calls must follow before Finish.
func (w *DocWriter) Begin(device string, dictBase int, delta []string, entries int) {
	w.buf = append(w.buf[:0], binMagic...)
	w.buf = append(w.buf, binWireVersion, 0)
	w.buf = appendStr(w.buf, device)
	w.buf = appendUvarint(w.buf, uint64(dictBase))
	w.buf = appendUvarint(w.buf, uint64(len(delta)))
	for _, s := range delta {
		w.buf = appendStr(w.buf, s)
	}
	w.buf = appendUvarint(w.buf, uint64(entries))
	w.entries = entries
}

// Entry appends one entry in wire order. devRefs are the refs of the
// devices that observed the entry (a device upload passes its own
// identity's ref).
func (w *DocWriter) Entry(appRef, actionRef, rootRef, fileRef uint32, line int, viaCaller bool, hangs int, devRefs []uint32, maxResponse, sumResponse simclock.Duration) {
	b := w.buf
	b = appendUvarint(b, uint64(appRef))
	b = appendUvarint(b, uint64(actionRef))
	b = appendUvarint(b, uint64(rootRef))
	b = appendUvarint(b, uint64(fileRef))
	b = appendUvarint(b, uint64(line))
	var eflags byte
	if viaCaller {
		eflags = binEntryViaCall
	}
	b = append(b, eflags)
	b = appendUvarint(b, uint64(hangs))
	b = appendUvarint(b, uint64(len(devRefs)))
	for _, d := range devRefs {
		b = appendUvarint(b, uint64(d))
	}
	b = appendUvarint(b, uint64(maxResponse))
	b = appendUvarint(b, uint64(sumResponse))
	w.buf = b
	w.entries--
}

// Finish returns the completed document. The slice aliases the writer's
// internal buffer and is valid until the next Begin — send it (or copy
// it) first. Finish panics if the Entry count does not match Begin's
// declaration: that is a caller bug that would otherwise surface as a
// confusing decode error on the server.
func (w *DocWriter) Finish() []byte {
	if w.entries != 0 {
		panic("core: DocWriter.Finish: entry count does not match Begin")
	}
	return w.buf
}

// EntryKey returns the composite identity key for an (app, action, root
// cause) triple — the same key the JSON import and the binary decoder
// compute. Callers that build WireEntry values by hand (load generators,
// the fleet simulator) must populate WireEntry.Key with it so
// MergeWireEntries routes and merges the entry correctly.
func EntryKey(app, actionUID, rootCause string) string {
	return entryKey(app, actionUID, rootCause)
}
