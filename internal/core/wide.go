package core

import (
	"hangdoctor/internal/android/app"
	"hangdoctor/internal/detect"
	"hangdoctor/internal/perf"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/stack"
)

// wideCollector implements the §3.3.1 periodic data-collection task that
// feeds the heavy adaptation: every Nth action execution it measures the
// full candidate-event set and samples the main thread's stack during any
// soft hang, labelling the reading with the Trace Analyzer's verdict. It is
// deliberately independent of the S-Checker/Diagnoser pipeline — it never
// touches action state — and its period bounds its overhead.
type wideCollector struct {
	doctor *Doctor

	sess     *perf.Session
	traces   []*stack.Stack
	sampler  *simclock.Event
	sampling bool
	count    int
	data     []HeavyReading
}

// onActionStart opens a wide perf session on every Nth execution.
func (w *wideCollector) onActionStart() {
	d := w.doctor
	every := d.cfg.WideCollectEvery
	if every <= 0 {
		return
	}
	w.count++
	w.traces = nil
	if w.count%every != 0 {
		return
	}
	w.sess = perf.Open(d.session.Clk, d.monitoredThreads(), CandidateEvents(), d.perfConfig())
}

// onEventStart arms the wide stack sampler behind the perceivable-delay
// watchdog, mirroring the Diagnoser's collection but into its own buffer.
func (w *wideCollector) onEventStart(ev *app.EventExec) {
	if w.sess == nil {
		return
	}
	d := w.doctor
	d.log.AddCost(detect.CostWatchdogNs)
	sessAtArm := w.sess
	d.session.Clk.After(d.cfg.PerceivableDelay, func() {
		if !ev.Done && w.sess == sessAtArm && !w.sampling {
			w.startSampler()
		}
	})
}

func (w *wideCollector) startSampler() {
	d := w.doctor
	w.sampling = true
	var tick func()
	tick = func() {
		w.sampler = nil
		if !w.sampling {
			return
		}
		if st := d.session.MainThread().CurrentStack(); st != nil {
			w.traces = append(w.traces, st)
			d.log.AddCost(detect.CostStackSampleNs)
			d.log.AddMem(detect.BytesPerStackSample)
		}
		w.sampler = d.session.Clk.After(d.cfg.SamplePeriod, tick)
	}
	tick()
}

func (w *wideCollector) stopSampler() {
	w.sampling = false
	if w.sampler != nil {
		w.doctor.session.Clk.Cancel(w.sampler)
		w.sampler = nil
	}
}

// onActionEnd closes the session and, for hangs with enough samples,
// records a labeled HeavyReading.
func (w *wideCollector) onActionEnd(rt simclock.Duration, hang bool) {
	if w.sess == nil {
		return
	}
	d := w.doctor
	reading := w.sess.Stop()
	d.log.AddCost(w.sess.CostNs())
	w.sess = nil
	w.stopSampler()
	traces := w.traces
	w.traces = nil
	if !hang || len(traces) < d.cfg.MinTraces {
		return
	}
	diag, ok := d.analyzer.Analyze(traces, d.session.App.Registry, d.cfg.OccurrenceHigh)
	if !ok {
		return
	}
	values := map[perf.Event]int64{}
	for _, e := range CandidateEvents() {
		if d.cfg.MainThreadOnly {
			values[e] = reading.Value(0, e)
		} else {
			values[e] = reading.Diff(e)
		}
	}
	w.data = append(w.data, HeavyReading{Values: values, IsBug: !diag.IsUI})
}

// WideData returns the HeavyReadings collected by the periodic
// data-collection task (empty unless Config.WideCollectEvery is set).
func (d *Doctor) WideData() []HeavyReading { return d.wide.data }
