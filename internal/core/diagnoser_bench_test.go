package core

import (
	"fmt"
	"testing"

	"hangdoctor/internal/corpus"
)

// BenchmarkAnalyzeTraces measures the Trace Analyzer's steady-state cost on
// corpus-derived sampled-stack sets at several stack depths (apps with
// different wrapper-chain shapes) and sample counts (short vs long hangs).
// The trace sets are synthesized once outside the timed loop — exactly what
// the Diagnoser hands AnalyzeTraces per traced soft hang — so ns/op and
// allocs/op isolate the analysis itself. CI records these rows in
// BENCH_diagnoser.json.
func BenchmarkAnalyzeTraces(b *testing.B) {
	c := corpus.Shared()
	cases := []struct {
		app     string
		samples int
	}{
		{"K9-Mail", 16},
		{"K9-Mail", 64},
		{"K9-Mail", 256},
		{"SageMath", 64},   // closed-source wrapper nesting: deepest stacks
		{"AndStatus", 64},  // shallow attribute-heavy stacks
		{"AntennaPod", 64}, // multi-event actions
	}
	for _, tc := range cases {
		a := c.MustApp(tc.app)
		traces := corpus.SampledTraces(a, 1234, tc.samples)
		b.Run(fmt.Sprintf("app=%s/samples=%d", tc.app, tc.samples), func(b *testing.B) {
			// Steady state: one Doctor-shaped analyzer reused across hangs,
			// warmed once so scratch growth is outside the measurement.
			var ta TraceAnalyzer
			if _, ok := ta.Analyze(traces, c.Registry, 0.5); !ok {
				b.Fatal("no diagnosis")
			}
			var sink int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, ok := ta.Analyze(traces, c.Registry, 0.5)
				if !ok {
					b.Fatal("no diagnosis")
				}
				sink += d.Line
			}
			_ = sink
		})
	}
}
