package detect

import (
	"hangdoctor/internal/android/api"
	"hangdoctor/internal/android/app"
)

// OfflineFinding is one hit of the offline source scanner: a main-thread
// call site whose visible call chain reaches a known blocking API.
type OfflineFinding struct {
	Action *app.Action
	Op     *app.Op
	// API is the known-blocking API that matched.
	API *api.API
}

// OfflineScan models PerfChecker-style offline detection (Liu et al., §2.2):
// statically walk every operation reachable from the app's main-thread
// handlers and report calls whose *visible* chain contains an API in the
// known-blocking database. The three blind spots the paper identifies fall
// out of the model directly:
//
//   - undocumented blocking APIs are not in the database → no match;
//   - a known API hidden behind a closed-source library is outside the
//     visible chain → no match;
//   - self-developed lengthy operations have no API to match at all.
func OfflineScan(a *app.App, reg *api.Registry) []OfflineFinding {
	var out []OfflineFinding
	for _, act := range a.Actions {
		for _, op := range act.Ops() {
			for _, vis := range op.VisibleAPIs() {
				// Deliberately the string path: offline scanning models an
				// external static tool reading source, so it queries the
				// registry by class.method key rather than by interned symbol
				// ID. The ID fast paths are reserved for the runtime hot
				// loops that own pre-interned frames.
				if reg.IsKnownBlocking(vis.Key()) {
					out = append(out, OfflineFinding{Action: act, Op: op, API: vis})
					break
				}
			}
		}
	}
	return out
}

// OfflineDetectedBugs returns the seeded bugs an offline scan of the app
// finds (the complement of the paper's "MO" column).
func OfflineDetectedBugs(a *app.App, reg *api.Registry) []*app.Bug {
	var out []*app.Bug
	for _, f := range OfflineScan(a, reg) {
		if f.Op.Bug != nil {
			out = append(out, f.Op.Bug)
		}
	}
	return out
}
