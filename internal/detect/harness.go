package detect

import (
	"hangdoctor/internal/android/app"
	"hangdoctor/internal/cpu"
	"hangdoctor/internal/simclock"
)

// Harness runs a user trace on one app session with detectors attached and
// scores the outcome.
type Harness struct {
	Session   *app.Session
	Detectors []Detector
	Execs     []*app.ActionExec
	appCPU0   int64
}

// NewHarness builds a session for the app/device/seed and attaches the
// detectors.
func NewHarness(a *app.App, dev app.Device, seed uint64, detectors ...Detector) (*Harness, error) {
	s, err := app.NewSession(a, dev, seed)
	if err != nil {
		return nil, err
	}
	h := &Harness{Session: s, Detectors: detectors}
	for _, d := range detectors {
		d.Attach(s)
		s.AddListener(d)
	}
	h.appCPU0 = h.appCPUNs()
	return h, nil
}

// EnableCostInjection makes every attached detector's accounted CPU cost
// execute as real work on a dedicated monitoring thread, like Hang Doctor's
// "additional, separate, and lightweight thread within the app" (§3.2). The
// monitoring thread contends with the app on the shared cores, so any
// responsiveness impact becomes measurable. Call before Run.
func (h *Harness) EnableCostInjection() {
	monitor := h.Session.Sched.NewThread("monitor")
	inject := func(ns int64) {
		if ns <= 0 {
			return
		}
		monitor.Enqueue(cpu.Compute{Dur: simclock.Duration(ns)})
	}
	for _, d := range h.Detectors {
		d.Log().Inject = inject
	}
}

// appCPUNs is the CPU consumed by the app's own threads (main + render),
// the denominator for overhead percentages.
func (h *Harness) appCPUNs() int64 {
	return h.Session.MainThread().Counters().TaskClock +
		h.Session.RenderThread().Counters().TaskClock
}

// Run executes the trace with think-time gaps, recording every execution.
func (h *Harness) Run(trace []*app.Action, think simclock.Duration) {
	for _, act := range trace {
		h.Execs = append(h.Execs, h.Session.Perform(act))
		h.Session.Idle(think)
	}
	for _, d := range h.Detectors {
		d.Detach()
	}
}

// Evaluate scores one attached detector against the recorded executions.
func (h *Harness) Evaluate(d Detector) Eval {
	return Evaluate(d.Name(), d.Log(), h.Execs)
}

// Overhead computes one detector's resource overhead over the trace run.
func (h *Harness) Overhead(d Detector) Overhead {
	return ComputeOverhead(d.Log(), h.appCPUNs()-h.appCPU0)
}
