package detect

import (
	"testing"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/simclock"
)

func kit(t *testing.T) (*corpus.Corpus, *app.App) {
	t.Helper()
	c := corpus.Build()
	return c, c.MustApp("K9-Mail")
}

func TestTimeout100TracesEveryHang(t *testing.T) {
	_, a := kit(t)
	ti := NewTimeout(PerceivableDelay)
	h, err := NewHarness(a, app.LGV10(), 21, ti)
	if err != nil {
		t.Fatal(err)
	}
	h.Run(corpus.Trace(a, 4, 80), simclock.Second)
	ev := h.Evaluate(ti)
	if ev.FN != 0 {
		t.Fatalf("TI-100ms FN = %d, want 0 (it traces every soft hang)", ev.FN)
	}
	if ev.TP == 0 || ev.FP == 0 {
		t.Fatalf("TI-100ms TP=%d FP=%d; expected both positive on K9", ev.TP, ev.FP)
	}
	// Incidents must equal soft hang occurrences.
	if got := ev.TP + ev.FP; got != ev.GroundTruthHangs+ev.UIHangs {
		t.Fatalf("incidents=%d, hangs=%d", got, ev.GroundTruthHangs+ev.UIHangs)
	}
}

func TestTimeoutSweepMonotonic(t *testing.T) {
	_, a := kit(t)
	timeouts := []simclock.Duration{
		PerceivableDelay, 500 * simclock.Millisecond, simclock.Second, 5 * simclock.Second,
	}
	var tps, fps []int
	for _, d := range timeouts {
		ti := NewTimeout(d)
		h, err := NewHarness(a, app.LGV10(), 21, ti)
		if err != nil {
			t.Fatal(err)
		}
		h.Run(corpus.Trace(a, 4, 80), simclock.Second)
		ev := h.Evaluate(ti)
		tps = append(tps, ev.TP)
		fps = append(fps, ev.FP)
	}
	for i := 1; i < len(tps); i++ {
		if tps[i] > tps[i-1] || fps[i] > fps[i-1] {
			t.Fatalf("longer timeout found more: TP=%v FP=%v", tps, fps)
		}
	}
	if tps[3] != 0 || fps[3] != 0 {
		t.Fatalf("5s timeout should find nothing: TP=%d FP=%d", tps[3], fps[3])
	}
	if tps[0] <= tps[2] {
		t.Fatalf("100ms should find strictly more than 1s: %v", tps)
	}
}

func TestOfflineScanBlindSpots(t *testing.T) {
	c, _ := kit(t)
	// K9: both bugs are undocumented APIs → zero bug findings.
	if bugs := OfflineDetectedBugs(c.MustApp("K9-Mail"), c.Registry); len(bugs) != 0 {
		t.Fatalf("offline found K9 bugs: %v", bugs)
	}
	// StickerCamera: all three bugs are documented platform APIs.
	if bugs := OfflineDetectedBugs(c.MustApp("StickerCamera"), c.Registry); len(bugs) != 3 {
		t.Fatalf("offline found %d StickerCamera bugs, want 3", len(bugs))
	}
	// SageMath: only the open-library-nested SQLite call is visible.
	bugs := OfflineDetectedBugs(c.MustApp("SageMath"), c.Registry)
	if len(bugs) != 1 || bugs[0].ID != "SageMath/84-cupboardGet" {
		t.Fatalf("SageMath offline bugs = %v", bugs)
	}
	// Feedback loop: teach the database about clean, rescan K9.
	c.Registry.AddKnownBlocking("org.htmlcleaner.HtmlCleaner.clean")
	if bugs := OfflineDetectedBugs(c.MustApp("K9-Mail"), c.Registry); len(bugs) != 1 {
		t.Fatalf("after feedback, offline K9 bugs = %d, want 1", len(bugs))
	}
}

func TestOfflineScanIgnoresUIOps(t *testing.T) {
	c, a := kit(t)
	for _, f := range OfflineScan(a, c.Registry) {
		if f.Op.IsUI(c.Registry) {
			t.Fatalf("offline flagged UI op %s", f.Op.Name)
		}
	}
}

func TestCalibrateUTAndDetectionTradeoffs(t *testing.T) {
	// CycleStreets is the paper's example of an app that confuses
	// utilization baselines: its I/O-bound bugs have quiet windows (UTH
	// misses them) while legitimate map redraws run hot (UTL floods).
	c := corpus.Build()
	a := c.MustApp("CycleStreets")
	trace := corpus.Trace(a, 4, 80)
	low, high, err := CalibrateUT(a, app.LGV10(), 77, trace)
	if err != nil {
		t.Fatal(err)
	}
	if low.CPU <= 0 || low.CPU >= high.CPU {
		t.Fatalf("thresholds: low=%+v high=%+v", low, high)
	}

	run := func(d Detector) Eval {
		h, err := NewHarness(a, app.LGV10(), 21, d)
		if err != nil {
			t.Fatal(err)
		}
		h.Run(trace, simclock.Second)
		return h.Evaluate(d)
	}
	utl := run(NewUtilization("UTL", low, false, 0))
	uth := run(NewUtilization("UTH", high, false, 0))
	ti := run(NewTimeout(PerceivableDelay))

	// UTL catches bugs but floods false positives relative to TI (§4.4:
	// 8-22x); UTH prunes FPs but misses most bugs.
	if utl.FP <= ti.FP {
		t.Fatalf("UTL FP=%d should exceed TI FP=%d", utl.FP, ti.FP)
	}
	if utl.FN > ti.FN+2 {
		t.Fatalf("UTL FN=%d should be near zero (TI FN=%d)", utl.FN, ti.FN)
	}
	if uth.TP >= ti.TP {
		t.Fatalf("UTH TP=%d should miss bugs vs TI TP=%d", uth.TP, ti.TP)
	}
	if uth.FP > utl.FP/4 {
		t.Fatalf("UTH FP=%d not much lower than UTL FP=%d", uth.FP, utl.FP)
	}
}

func TestOverheadOrdering(t *testing.T) {
	_, a := kit(t)
	trace := corpus.Trace(a, 4, 60)
	low, high, err := CalibrateUT(a, app.LGV10(), 77, trace)
	if err != nil {
		t.Fatal(err)
	}
	overhead := func(d Detector) float64 {
		h, err := NewHarness(a, app.LGV10(), 21, d)
		if err != nil {
			t.Fatal(err)
		}
		h.Run(trace, simclock.Second)
		return h.Overhead(d).Avg()
	}
	utl := overhead(NewUtilization("UTL", low, false, 0))
	uth := overhead(NewUtilization("UTH", high, false, 0))
	ti := overhead(NewTimeout(PerceivableDelay))
	uthTI := overhead(NewUtilization("UTH", high, true, 0))

	// Figure 8(c) ordering: UTL > UTH > TI > UTH+TI.
	if !(utl > uth && uth > ti && ti > uthTI) {
		t.Fatalf("overhead ordering violated: UTL=%.2f UTH=%.2f TI=%.2f UTH+TI=%.2f",
			utl, uth, ti, uthTI)
	}
}

func TestEvaluateSemantics(t *testing.T) {
	// Synthetic: one bug hang traced, one missed, one UI hang traced.
	c, a := kit(t)
	_ = c
	s, err := app.NewSession(a, app.LGV10().Quiet(), 5)
	if err != nil {
		t.Fatal(err)
	}
	var execs []*app.ActionExec
	open := a.MustAction("Open Email")
	folders := a.MustAction("Folders")
	for len(execs) < 6 {
		execs = append(execs, s.Perform(open))
		s.Idle(simclock.Second)
		execs = append(execs, s.Perform(folders))
		s.Idle(simclock.Second)
	}
	var bugExecs, uiExecs []*app.ActionExec
	for _, e := range execs {
		if e.ResponseTime() <= PerceivableDelay {
			continue
		}
		if e.BugCaused(PerceivableDelay) != nil {
			bugExecs = append(bugExecs, e)
		} else {
			uiExecs = append(uiExecs, e)
		}
	}
	if len(bugExecs) < 2 || len(uiExecs) < 1 {
		t.Skipf("trace variety insufficient: %d bug, %d ui", len(bugExecs), len(uiExecs))
	}
	log := &Log{}
	log.Trace(TracedHang{Exec: bugExecs[0]})
	log.Trace(TracedHang{Exec: bugExecs[0]}) // duplicate: must not double count
	log.Trace(TracedHang{Exec: uiExecs[0]})
	ev := Evaluate("synthetic", log, execs)
	if ev.TP != 1 {
		t.Fatalf("TP = %d, want 1", ev.TP)
	}
	if ev.FP != 1 {
		t.Fatalf("FP = %d, want 1", ev.FP)
	}
	if ev.FN != len(bugExecs)-1 {
		t.Fatalf("FN = %d, want %d", ev.FN, len(bugExecs)-1)
	}
	if len(ev.BugIDs()) != 1 {
		t.Fatalf("BugIDs = %v", ev.BugIDs())
	}
}

func TestComputeOverhead(t *testing.T) {
	log := &Log{CostNs: 50, MemUsed: AppFootprintBytes / 10}
	o := ComputeOverhead(log, 1000)
	if o.CPUPct != 5 {
		t.Fatalf("CPUPct = %v", o.CPUPct)
	}
	if o.MemPct < 9.99 || o.MemPct > 10.01 {
		t.Fatalf("MemPct = %v", o.MemPct)
	}
	if o.Avg() < 7.49 || o.Avg() > 7.51 {
		t.Fatalf("Avg = %v", o.Avg())
	}
	if z := ComputeOverhead(&Log{CostNs: 5}, 0); z.CPUPct != 0 {
		t.Fatalf("zero denominator mishandled: %+v", z)
	}
}
