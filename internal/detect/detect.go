// Package detect provides the runtime-detection framework the paper's
// evaluation (§4) compares Hang Doctor against: the Detector interface and
// its accounting (traced incidents, simulated monitoring cost), the
// Timeout-based (TI) and Utilization-based (UTL/UTH, alone or +TI)
// baselines, the PerfChecker-style offline scanner, and the harness that
// runs a user trace under a detector and scores true/false positives,
// false negatives, and overhead.
package detect

import (
	"sort"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/simclock"
)

// PerceivableDelay is the minimum human-perceivable delay (100 ms) that
// defines a soft hang throughout the paper.
const PerceivableDelay = 100 * simclock.Millisecond

// Monitoring cost model, in simulated nanoseconds of detector CPU and bytes
// of detector memory. The constants model the concrete mechanisms each
// detector uses on a real phone; the detectors account them but do not
// inject them into the scheduler, so every detector observes the identical
// app trace (the paper's "same app user traces" comparison).
const (
	// CostUtilSampleNs: read and parse /proc/<pid>/stat and io for the
	// monitored threads.
	CostUtilSampleNs = 2_000_000
	// CostStackSampleNs: trigger and symbolize one main-thread stack dump.
	CostStackSampleNs = 1_500_000
	// CostWatchdogNs: arm/disarm the per-event response-time watchdog.
	CostWatchdogNs = 4_000

	// BytesPerStackSample: one retained stack trace.
	BytesPerStackSample = 2048
	// BytesPerUtilSample: one utilization log record.
	BytesPerUtilSample = 64
	// AppFootprintBytes: nominal resident footprint of the host app, the
	// denominator of the memory-overhead percentage.
	AppFootprintBytes = 64 << 20
)

// StackSamplePeriod is the interval at which trace collectors sample the
// main thread during a soft hang (the paper's Figure 6 shows ~60 samples
// over a 1.3 s hang).
const StackSamplePeriod = 20 * simclock.Millisecond

// TracedHang is one tracing incident a detector committed resources to: it
// collected stack traces attributing a (suspected) soft hang.
type TracedHang struct {
	At           simclock.Time
	Exec         *app.ActionExec
	ResponseTime simclock.Duration
	// RootCause is the detector's diagnosis (class.method), "" if the
	// detector does not diagnose (baselines).
	RootCause string
	// RootCauseIsBug is the detector's verdict when it diagnoses.
	RootCauseIsBug bool
}

// Log accumulates a detector's incidents and resource usage.
type Log struct {
	Traced  []TracedHang
	CostNs  int64
	MemUsed int64
	// Inject, when set by the harness, turns accounted costs into real
	// simulated CPU work on a monitoring thread, so monitoring contends
	// with the app it observes (the §4.5 responsiveness-impact check).
	Inject func(ns int64)
}

// AddCost charges detector CPU time.
func (l *Log) AddCost(ns int64) {
	l.CostNs += ns
	if l.Inject != nil {
		l.Inject(ns)
	}
}

// AddMem charges detector memory.
func (l *Log) AddMem(bytes int64) { l.MemUsed += bytes }

// Trace records an incident.
func (l *Log) Trace(h TracedHang) { l.Traced = append(l.Traced, h) }

// Detector is a runtime soft-hang detector attached to an app session. It
// observes the session through the app.Listener hooks plus any clock timers
// it arms, and reports incidents through its Log.
type Detector interface {
	app.Listener
	Name() string
	Log() *Log
	// Attach binds the detector to a session before the trace runs.
	Attach(s *app.Session)
	// Detach releases timers after the trace.
	Detach()
}

// Eval scores a detector's log against ground truth.
type Eval struct {
	Detector string
	// TP: traced incidents whose execution manifested a soft hang bug.
	TP int
	// FP: traced incidents not attributable to a bug.
	FP int
	// FN: ground-truth bug-hang occurrences the detector did not trace.
	FN int
	// GroundTruthHangs is the number of bug-caused soft hang occurrences in
	// the trace (TP + FN).
	GroundTruthHangs int
	// UIHangs is the number of UI-caused soft hang occurrences.
	UIHangs int
	// BugsFound is the set of distinct bug IDs covered by TP incidents.
	BugsFound map[string]bool
}

// Evaluate scores log entries against the executed trace. True positives
// and false negatives are counted per execution (an execution whose bug
// hang was traced at least once is covered). False positives are counted
// per *incident*: every tracing episode a detector commits to a non-bug
// cause costs real overhead and developer attention, which is how the paper
// compares UTL's flood of episodes against TI's one-per-hang (§4.4).
func Evaluate(name string, log *Log, execs []*app.ActionExec) Eval {
	ev := Eval{Detector: name, BugsFound: map[string]bool{}}
	tracedExecs := map[*app.ActionExec]bool{}
	for _, h := range log.Traced {
		if h.Exec != nil {
			if b := h.Exec.BugCaused(PerceivableDelay); b != nil {
				if !tracedExecs[h.Exec] {
					tracedExecs[h.Exec] = true
					ev.TP++
					ev.BugsFound[b.ID] = true
				}
				continue
			}
		}
		ev.FP++
	}
	for _, e := range execs {
		hang := e.ResponseTime() > PerceivableDelay
		if !hang {
			continue
		}
		if e.BugCaused(PerceivableDelay) != nil {
			ev.GroundTruthHangs++
			if !tracedExecs[e] {
				ev.FN++
			}
		} else {
			ev.UIHangs++
		}
	}
	return ev
}

// BugIDs returns the sorted distinct bug IDs found.
func (e Eval) BugIDs() []string {
	out := make([]string, 0, len(e.BugsFound))
	for id := range e.BugsFound {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Overhead is the paper's §4.5 resource-usage metric: the average of the
// CPU and memory increase percentages caused by the detector.
type Overhead struct {
	CPUPct float64
	MemPct float64
}

// Avg returns the combined overhead percentage.
func (o Overhead) Avg() float64 { return (o.CPUPct + o.MemPct) / 2 }

// ComputeOverhead relates a detector's cost to the app's own resource use
// over the trace: appCPUNs is the CPU consumed by the app's threads.
func ComputeOverhead(log *Log, appCPUNs int64) Overhead {
	var o Overhead
	if appCPUNs > 0 {
		o.CPUPct = 100 * float64(log.CostNs) / float64(appCPUNs)
	}
	o.MemPct = 100 * float64(log.MemUsed) / float64(AppFootprintBytes)
	return o
}
