package detect

import (
	"fmt"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/simclock"
)

// Timeout is the TImeout-based (TI) baseline of §4.1: it arms a watchdog for
// every input event and, when the response time passes the timeout, collects
// main-thread stack traces until the event finishes. It is the mechanism of
// Android's ANR tool (5 s) and of Jovic et al. (shorter timeouts), and it is
// also the reference detector for counting false negatives: with a 100 ms
// timeout it traces *every* soft hang.
type Timeout struct {
	TimeoutDur simclock.Duration

	log     Log
	session *app.Session

	// tracing state for the current action
	tracing   bool
	anyTraced bool
}

// NewTimeout builds a TI detector with the given timeout.
func NewTimeout(d simclock.Duration) *Timeout {
	return &Timeout{TimeoutDur: d}
}

// Name implements Detector.
func (t *Timeout) Name() string {
	return fmt.Sprintf("TI-%s", t.TimeoutDur)
}

// Log implements Detector.
func (t *Timeout) Log() *Log { return &t.log }

// Attach implements Detector.
func (t *Timeout) Attach(s *app.Session) { t.session = s }

// Detach implements Detector.
func (t *Timeout) Detach() {}

// ActionStart implements app.Listener.
func (t *Timeout) ActionStart(e *app.ActionExec) { t.anyTraced = false }

// EventStart arms the watchdog: if the event is still running when the
// timeout fires, tracing begins.
func (t *Timeout) EventStart(e *app.ActionExec, ev *app.EventExec) {
	t.log.AddCost(CostWatchdogNs)
	evRef := ev
	t.session.Clk.After(t.TimeoutDur, func() {
		if !evRef.Done {
			t.tracing = true
		}
	})
}

// EventEnd charges the collected stack samples and records the incident.
func (t *Timeout) EventEnd(e *app.ActionExec, ev *app.EventExec) {
	if !t.tracing {
		return
	}
	t.tracing = false
	rt := ev.ResponseTime()
	over := rt - t.TimeoutDur
	samples := int64(over/StackSamplePeriod) + 1
	t.log.AddCost(samples * CostStackSampleNs)
	t.log.AddMem(samples * BytesPerStackSample)
	if !t.anyTraced {
		// One incident per action: the action's response time is the max
		// over its events (§2.2).
		t.anyTraced = true
		t.log.Trace(TracedHang{At: ev.End, Exec: e, ResponseTime: rt})
	}
}

// ActionEnd implements app.Listener.
func (t *Timeout) ActionEnd(e *app.ActionExec) { t.tracing = false }
