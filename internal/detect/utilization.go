package detect

import (
	"fmt"
	"math"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/simclock"
)

// UTThresholds are per-app static resource-utilization thresholds (§4.1):
// CPU is a fraction of one core used by the main thread over a sampling
// window; MemPerSec is the main thread's page-fault rate, standing in for
// "memory traffic".
type UTThresholds struct {
	CPU       float64
	MemPerSec float64
}

// CalibrateUT derives the Low and High thresholds the paper uses for the
// UT baselines from a profiling run with ground truth. It samples the main
// thread on the UT monitoring period (100 ms) exactly as the detector will,
// keeps the samples that fall inside bug-caused soft hang executions, and
// sets Low to the minimum observed utilization (so UTL catches every bug,
// at the price of flagging almost everything) and High to 90% of the peak
// (so UTH flags only the heaviest bugs).
func CalibrateUT(a *app.App, dev app.Device, seed uint64, trace []*app.Action) (low, high UTThresholds, err error) {
	s, err := app.NewSession(a, dev, seed)
	if err != nil {
		return low, high, err
	}
	const period = 100 * simclock.Millisecond
	type sample struct {
		from, to simclock.Time
		cpu, mem float64
	}
	var pending []sample // samples within the current action
	var bugSamples []sample

	lastClock := int64(0)
	lastFaults := int64(0)
	lastAt := s.Clk.Now()
	var tick func()
	tick = func() {
		now := s.Clk.Now()
		c := s.MainThread().Counters()
		window := now.Sub(lastAt)
		if window > 0 && s.Current() != nil {
			pending = append(pending, sample{
				from: lastAt, to: now,
				cpu: float64(c.TaskClock-lastClock) / float64(window),
				mem: float64(c.PageFaults()-lastFaults) / (float64(window) / float64(simclock.Second)),
			})
		}
		lastAt, lastClock, lastFaults = now, c.TaskClock, c.PageFaults()
		s.Clk.After(period, tick)
	}
	s.Clk.After(period, tick)

	for _, act := range trace {
		pending = pending[:0]
		exec := s.Perform(act)
		if exec.BugCaused(PerceivableDelay) != nil {
			// Keep only samples overlapping a hanging input event: windows
			// in the render-drain tail of the action say nothing about the
			// main thread's behaviour during the hang.
			for _, smp := range pending {
				for _, ev := range exec.Events {
					if ev.ResponseTime() > PerceivableDelay && smp.from < ev.End && smp.to > ev.Start {
						bugSamples = append(bugSamples, smp)
						break
					}
				}
			}
		}
		s.Idle(simclock.Second)
	}
	if len(bugSamples) == 0 {
		return low, high, fmt.Errorf("detect: no bug manifested while calibrating %s", a.Name)
	}
	low = UTThresholds{CPU: math.Inf(1), MemPerSec: math.Inf(1)}
	for _, smp := range bugSamples {
		low.CPU = math.Min(low.CPU, smp.cpu)
		low.MemPerSec = math.Min(low.MemPerSec, smp.mem)
		high.CPU = math.Max(high.CPU, smp.cpu)
		high.MemPerSec = math.Max(high.MemPerSec, smp.mem)
	}
	high.CPU *= 0.9
	high.MemPerSec *= 0.9
	return low, high, nil
}

// Utilization is the UT baseline (§4.1, after Pelleg et al. and Zhu et
// al.): it samples the main thread's resource utilization on a fixed period
// and suspects a soft hang bug whenever a threshold is exceeded. With
// WithTimeout set it becomes UT+TI: sampling happens only while an input
// event has already exceeded the 100 ms perceivable delay, and incidents
// require both conditions.
type Utilization struct {
	Label       string // "UTL" or "UTH"
	Thresholds  UTThresholds
	WithTimeout bool

	Period simclock.Duration

	log     Log
	session *app.Session

	ticker     *simclock.Event
	lastSample simclock.Time
	lastClock  int64
	lastFaults int64

	hangActive bool // WithTimeout: current event has passed 100 ms
	curExec    *app.ActionExec
	curRT      simclock.Duration
}

// NewUtilization builds a UT baseline. period 0 defaults to 100 ms.
func NewUtilization(label string, thr UTThresholds, withTimeout bool, period simclock.Duration) *Utilization {
	if period == 0 {
		period = 100 * simclock.Millisecond
	}
	return &Utilization{Label: label, Thresholds: thr, WithTimeout: withTimeout, Period: period}
}

// Name implements Detector.
func (u *Utilization) Name() string {
	if u.WithTimeout {
		return u.Label + "+TI"
	}
	return u.Label
}

// Log implements Detector.
func (u *Utilization) Log() *Log { return &u.log }

// Attach starts the periodic sampler (plain UT samples through the whole
// trace, which is where its overhead comes from).
func (u *Utilization) Attach(s *app.Session) {
	u.session = s
	if !u.WithTimeout {
		u.resetBaseline()
		u.armTicker()
	}
}

// Detach stops sampling.
func (u *Utilization) Detach() {
	if u.ticker != nil {
		u.session.Clk.Cancel(u.ticker)
		u.ticker = nil
	}
}

func (u *Utilization) resetBaseline() {
	c := u.session.MainThread().Counters()
	u.lastSample = u.session.Clk.Now()
	u.lastClock = c.TaskClock
	u.lastFaults = c.PageFaults()
}

func (u *Utilization) armTicker() {
	u.ticker = u.session.Clk.After(u.Period, func() {
		u.ticker = nil
		u.sample()
		if !u.WithTimeout || u.hangActive {
			u.armTicker()
		}
	})
}

// sample reads the main thread's utilization over the last window and
// updates the flagged state.
func (u *Utilization) sample() {
	now := u.session.Clk.Now()
	window := now.Sub(u.lastSample)
	if window <= 0 {
		return
	}
	c := u.session.MainThread().Counters()
	cpu := float64(c.TaskClock-u.lastClock) / float64(window)
	mem := float64(c.PageFaults()-u.lastFaults) / (float64(window) / 1e9)
	u.lastSample = now
	u.lastClock = c.TaskClock
	u.lastFaults = c.PageFaults()

	u.log.AddCost(CostUtilSampleNs)
	u.log.AddMem(BytesPerUtilSample)

	if u.WithTimeout && !u.hangActive {
		return
	}
	if cpu > u.Thresholds.CPU || mem > u.Thresholds.MemPerSec {
		// Suspected bug: collect stack traces for this window and commit an
		// incident. Unlike TI, a UT monitor has no action-level notion of
		// "one response time": every violating window triggers its own
		// trace burst — the mechanism behind the paper's 8-22x
		// false-positive blow-up for UTL (§4.4).
		samples := int64(u.Period / StackSamplePeriod)
		if samples < 1 {
			samples = 1
		}
		u.log.AddCost(samples * CostStackSampleNs)
		u.log.AddMem(samples * BytesPerStackSample)
		if !u.WithTimeout || u.curRT > PerceivableDelay || u.hangActive {
			u.log.Trace(TracedHang{At: u.session.Clk.Now(), Exec: u.curExec, ResponseTime: u.curRT})
		}
	}
}

// ActionStart implements app.Listener.
func (u *Utilization) ActionStart(e *app.ActionExec) {
	u.curExec = e
	u.curRT = 0
}

// EventStart arms the 100 ms watchdog in UT+TI mode.
func (u *Utilization) EventStart(e *app.ActionExec, ev *app.EventExec) {
	if !u.WithTimeout {
		return
	}
	u.log.AddCost(CostWatchdogNs)
	evRef := ev
	u.session.Clk.After(PerceivableDelay, func() {
		if !evRef.Done && u.curExec == e {
			u.hangActive = true
			u.resetBaseline()
			u.armTicker()
		}
	})
}

// EventEnd stops hang-scoped sampling in UT+TI mode.
func (u *Utilization) EventEnd(e *app.ActionExec, ev *app.EventExec) {
	if rt := ev.ResponseTime(); rt > u.curRT {
		u.curRT = rt
	}
	if u.WithTimeout && u.hangActive {
		u.hangActive = false
		if u.ticker != nil {
			u.session.Clk.Cancel(u.ticker)
			u.ticker = nil
		}
	}
}

// ActionEnd implements app.Listener.
func (u *Utilization) ActionEnd(e *app.ActionExec) {
	u.curExec = nil
}
