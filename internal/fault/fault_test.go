package fault

import (
	"testing"

	"hangdoctor/internal/simclock"
)

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if in.PerfOpenFails() || in.CounterDropped() || in.RenderUnavailable() || in.StackMissed() {
		t.Fatal("nil injector fired a fault")
	}
	if kept, ok := in.TruncateTo(8); ok || kept != 8 {
		t.Fatalf("nil injector truncated: kept=%d ok=%v", kept, ok)
	}
	if extra, ok := in.OverrunExtra(20 * simclock.Millisecond); ok || extra != 0 {
		t.Fatalf("nil injector overran: extra=%v ok=%v", extra, ok)
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("nil injector stats = %+v", s)
	}
	if !in.Rates().Zero() {
		t.Fatal("nil injector has non-zero rates")
	}
}

func TestZeroRatesNeverFireAndNeverDraw(t *testing.T) {
	in := New(7, Rates{})
	for i := 0; i < 1000; i++ {
		if in.PerfOpenFails() || in.CounterDropped() || in.RenderUnavailable() ||
			in.StackMissed() {
			t.Fatal("zero-rate injector fired")
		}
		if _, ok := in.TruncateTo(10); ok {
			t.Fatal("zero-rate injector truncated")
		}
		if _, ok := in.OverrunExtra(simclock.Millisecond); ok {
			t.Fatal("zero-rate injector overran")
		}
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("stats after zero-rate run = %+v", s)
	}
}

func TestRateOneAlwaysFires(t *testing.T) {
	in := New(7, Rates{
		PerfOpenFail: 1, CounterDrop: 1, RenderLoss: 1,
		StackMiss: 1, StackTruncate: 1, SamplerOverrun: 1,
	})
	for i := 0; i < 100; i++ {
		if !in.PerfOpenFails() || !in.CounterDropped() || !in.RenderUnavailable() || !in.StackMissed() {
			t.Fatal("rate-1 fault did not fire")
		}
		kept, ok := in.TruncateTo(10)
		if !ok || kept < 1 || kept >= 10 {
			t.Fatalf("truncation kept %d of 10 (ok=%v)", kept, ok)
		}
		extra, ok := in.OverrunExtra(20 * simclock.Millisecond)
		if !ok || extra < 20*simclock.Millisecond || extra > 60*simclock.Millisecond {
			t.Fatalf("overrun extra = %v (ok=%v)", extra, ok)
		}
	}
	s := in.Stats()
	if s.PerfOpenFails != 100 || s.CountersDropped != 100 || s.RenderLosses != 100 ||
		s.StacksMissed != 100 || s.StacksTruncated != 100 || s.SamplerOverruns != 100 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestTruncationNeverEatsLeafOrShallowStacks(t *testing.T) {
	in := New(3, Rates{StackTruncate: 1})
	for _, depth := range []int{0, 1} {
		if kept, ok := in.TruncateTo(depth); ok || kept != depth {
			t.Fatalf("depth-%d stack truncated to %d", depth, kept)
		}
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	rates := Rates{PerfOpenFail: 0.3, CounterDrop: 0.5, StackMiss: 0.7, StackTruncate: 0.4, SamplerOverrun: 0.2, RenderLoss: 0.1}
	a, b := New(42, rates), New(42, rates)
	for i := 0; i < 500; i++ {
		if a.PerfOpenFails() != b.PerfOpenFails() ||
			a.CounterDropped() != b.CounterDropped() ||
			a.RenderUnavailable() != b.RenderUnavailable() ||
			a.StackMissed() != b.StackMissed() {
			t.Fatalf("decision %d diverged between same-seed injectors", i)
		}
		ka, oka := a.TruncateTo(12)
		kb, okb := b.TruncateTo(12)
		if ka != kb || oka != okb {
			t.Fatalf("truncation %d diverged: %d/%v vs %d/%v", i, ka, oka, kb, okb)
		}
		ea, oka := a.OverrunExtra(simclock.Millisecond)
		eb, okb := b.OverrunExtra(simclock.Millisecond)
		if ea != eb || oka != okb {
			t.Fatalf("overrun %d diverged", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestFaultKindsAreIndependentStreams(t *testing.T) {
	// Turning one fault on must not change another kind's decisions.
	both := New(9, Rates{StackMiss: 0.5, CounterDrop: 0.5})
	only := New(9, Rates{StackMiss: 0.5})
	for i := 0; i < 300; i++ {
		both.CounterDropped() // extra draws on the counter stream
		if both.StackMissed() != only.StackMissed() {
			t.Fatalf("stack decision %d perturbed by counter stream", i)
		}
	}
}

func TestRatesString(t *testing.T) {
	if got := (Rates{}).String(); got != "none" {
		t.Fatalf("zero rates render as %q", got)
	}
	r := Rates{StackMiss: 0.5, PerfOpenFail: 0.1}
	if got := r.String(); got != "open=0.10 stack=0.50" {
		t.Fatalf("rates render as %q", got)
	}
}
