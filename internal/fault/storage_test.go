package fault

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestFaultyFSPassthrough: no injector (or all-zero rates) must return the
// base FS unchanged, so the fault-free path has literally no wrapper.
func TestFaultyFSPassthrough(t *testing.T) {
	if got := FaultyFS(DiskFS, nil); got != DiskFS {
		t.Error("nil injector did not pass the base FS through")
	}
	if got := FaultyFS(DiskFS, NewStorage(1, StorageRates{})); got != DiskFS {
		t.Error("zero-rate injector did not pass the base FS through")
	}
	if got := FaultyFS(DiskFS, NewStorage(1, StorageRates{TornWrite: 0.5})); got == DiskFS {
		t.Error("non-zero rates returned the bare base FS")
	}
}

// writePattern performs n fixed-size writes to path through fsys and
// returns which of them drew an injected write fault.
func writePattern(t *testing.T, fsys FS, path string, n int) []bool {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := bytes.Repeat([]byte{0x5A}, 64)
	faults := make([]bool, n)
	for i := range faults {
		_, err := f.Write(buf)
		faults[i] = errors.Is(err, ErrTornWrite) || errors.Is(err, ErrDiskFull)
	}
	return faults
}

// TestStorageDeterminism: the same (seed, rates, file name, op sequence)
// draws the same faults — the reproducibility contract chaos runs rely on.
func TestStorageDeterminism(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	rates := StorageRates{TornWrite: 0.3, DiskFull: 0.1}
	a := writePattern(t, FaultyFS(DiskFS, NewStorage(42, rates)), path, 200)
	b := writePattern(t, FaultyFS(DiskFS, NewStorage(42, rates)), path, 200)
	if !equalBools(a, b) {
		t.Error("same seed and name produced different fault sequences")
	}
	c := writePattern(t, FaultyFS(DiskFS, NewStorage(43, rates)), path, 200)
	if equalBools(a, c) {
		t.Error("different seeds produced identical fault sequences")
	}
	if countTrue(a) == 0 || countTrue(a) == len(a) {
		t.Errorf("fault rate unreasonable: %d of %d writes faulted", countTrue(a), len(a))
	}
}

// TestStorageStreamsContinueAcrossReopen: reopening a file continues its
// decision stream rather than replaying it, so a fault is never pinned to
// a file offset forever (retry-after-reopen can make progress), while the
// whole-run sequence is still a pure function of (seed, name).
func TestStorageStreamsContinueAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	rates := StorageRates{TornWrite: 0.4}

	oneOpen := writePattern(t, FaultyFS(DiskFS, NewStorage(7, rates)), path, 100)

	split := FaultyFS(DiskFS, NewStorage(7, rates))
	twoOpens := append(writePattern(t, split, path, 50), writePattern(t, split, path, 50)...)
	if !equalBools(oneOpen, twoOpens) {
		t.Error("reopening restarted the decision stream instead of continuing it")
	}
}

// TestShortReadIsLossless: a short read returns fewer bytes, it does not
// consume bytes it failed to report — reading the file to the end through
// heavy short-read injection must still yield every byte in order.
func TestShortReadIsLossless(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data")
	want := bytes.Repeat([]byte("0123456789abcdef"), 4096)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	in := NewStorage(11, StorageRates{ShortRead: 0.9})
	f, err := FaultyFS(DiskFS, in).OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := io.ReadAll(readerFunc(f.Read))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("short reads corrupted the stream: got %d bytes, want %d", len(got), len(want))
	}
	if in.Stats().ShortReads == 0 {
		t.Error("no short reads delivered at rate 0.9")
	}
}

// TestCorruptReadFlipsBits: corrupt reads must actually change bytes (and
// count them), never lengths.
func TestCorruptReadFlipsBits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data")
	want := bytes.Repeat([]byte{0x00}, 1<<16)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	in := NewStorage(13, StorageRates{CorruptRead: 0.5})
	f, err := FaultyFS(DiskFS, in).OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := io.ReadAll(readerFunc(f.Read))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("corrupt reads changed the length: %d, want %d", len(got), len(want))
	}
	if bytes.Equal(got, want) {
		t.Error("no bytes flipped at rate 0.5")
	}
	if in.Stats().CorruptReads == 0 {
		t.Error("corrupt reads went uncounted")
	}
}

// TestStorageStatsAndSync: delivered faults are counted per kind, and a
// nil injector reports zeros.
func TestStorageStatsAndSync(t *testing.T) {
	var nilIn *StorageInjector
	if nilIn.Stats() != (StorageStats{}) || !nilIn.Rates().Zero() {
		t.Error("nil injector must report zero stats and rates")
	}

	path := filepath.Join(t.TempDir(), "log")
	in := NewStorage(5, StorageRates{FsyncFail: 1.0})
	f, err := FaultyFS(DiskFS, in).OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 3; i++ {
		if err := f.Sync(); !errors.Is(err, ErrFsyncFail) {
			t.Fatalf("Sync at rate 1.0: err=%v, want ErrFsyncFail", err)
		}
	}
	if got := in.Stats().FsyncFails; got != 3 {
		t.Errorf("FsyncFails = %d, want 3", got)
	}
}

// TestStorageRatesString pins the compact rendering the chaos harness logs.
func TestStorageRatesString(t *testing.T) {
	if got := (StorageRates{}).String(); got != "none" {
		t.Errorf("zero rates render %q, want \"none\"", got)
	}
	r := StorageRates{TornWrite: 0.1, FsyncFail: 0.5}
	if got := r.String(); got != "torn=0.10 fsync=0.50" {
		t.Errorf("rates render %q", got)
	}
}

type readerFunc func([]byte) (int, error)

func (f readerFunc) Read(p []byte) (int, error) { return f(p) }

func equalBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func countTrue(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}
