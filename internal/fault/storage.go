package fault

// storage.go extends the fault-injection substrate from the measurement
// plane to the storage plane: the fleet WAL writes and reads through the
// FS/File seam below, and a StorageInjector wraps that seam with seeded
// write/read/sync faults so crash recovery is chaos-tested exactly like
// the Doctor's degraded modes. The modeled failures are the ones durable
// logs actually meet in the field:
//
//   - torn write: the process (or kernel) dies mid-append and only a
//     prefix of the record reaches the platter;
//   - disk full: the append is refused outright (ENOSPC);
//   - fsync failure: the write landed in the page cache but the barrier
//     failed, so durability was never promised;
//   - short read: a read returns fewer bytes than asked with no error —
//     contract-legal for io.Reader, and exactly the case sloppy decoders
//     mishandle;
//   - corrupt read: bit rot flips a byte, which the WAL's per-record CRC
//     must catch.
//
// Decision streams derive from (seed, file name) and persist across
// reopens of the same name, so a run draws one reproducible sequence per
// file no matter how shards interleave or how often recovery reopens a
// log — a fault is a property of the stream's position, never a curse on
// a fixed file offset that would make every retry fail identically.
// Per-shard WAL files are single-writer, which keeps the per-operation
// decision path lock-free (the only lock is at OpenFile, off the hot
// path); the delivered-fault counters are atomics.

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
	"sync/atomic"

	"hangdoctor/internal/obs"
	"hangdoctor/internal/simrand"
)

// File is the handle surface a WAL needs: sequential reads for replay,
// appends for the log, Truncate to repair a torn tail, Sync for the
// durability barrier.
type File interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	Sync() error
	Truncate(size int64) error
	Close() error
}

// FS is the filesystem seam durable state is written through. The
// production implementation is DiskFS; tests and the chaos harness wrap
// any FS with FaultyFS to inject storage faults beneath an unchanged
// caller.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics (flag is a
	// combination of os.O_RDONLY, os.O_WRONLY, os.O_CREATE, os.O_APPEND,
	// os.O_TRUNC, ...).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath (the commit point
	// of snapshot compaction).
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm fs.FileMode) error
}

// DiskFS is the real, os-backed FS.
var DiskFS FS = diskFS{}

type diskFS struct{}

func (diskFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (diskFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (diskFS) Remove(name string) error                     { return os.Remove(name) }
func (diskFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// Injected-fault sentinel errors. Callers must treat them like the real
// thing (ENOSPC, EIO); tests match on them to tell injected failures from
// genuine ones.
var (
	ErrTornWrite = errors.New("fault: injected torn write")
	ErrDiskFull  = errors.New("fault: injected disk full")
	ErrFsyncFail = errors.New("fault: injected fsync failure")
)

// StorageRates holds one independent probability per storage fault; the
// zero value injects nothing.
type StorageRates struct {
	// TornWrite is the per-Write probability that only a random prefix of
	// the buffer reaches the file before the write errors out.
	TornWrite float64
	// ShortRead is the per-Read probability that fewer bytes than
	// available are returned with a nil error.
	ShortRead float64
	// FsyncFail is the per-Sync probability that the durability barrier
	// reports failure.
	FsyncFail float64
	// DiskFull is the per-Write probability of an up-front ENOSPC-style
	// refusal (nothing written).
	DiskFull float64
	// CorruptRead is the per-Read probability that one returned byte has
	// a bit flipped (bit rot the CRC must catch).
	CorruptRead float64
}

// Zero reports whether every rate is zero.
func (r StorageRates) Zero() bool {
	return r.TornWrite == 0 && r.ShortRead == 0 && r.FsyncFail == 0 &&
		r.DiskFull == 0 && r.CorruptRead == 0
}

// String renders the non-zero rates compactly ("torn=0.10 fsync=0.50").
func (r StorageRates) String() string {
	s := ""
	add := func(name string, v float64) {
		if v != 0 {
			if s != "" {
				s += " "
			}
			s += fmt.Sprintf("%s=%.2f", name, v)
		}
	}
	add("torn", r.TornWrite)
	add("shortread", r.ShortRead)
	add("fsync", r.FsyncFail)
	add("full", r.DiskFull)
	add("corrupt", r.CorruptRead)
	if s == "" {
		return "none"
	}
	return s
}

// StorageStats counts the storage faults actually delivered, the chaos
// harness's ground truth.
type StorageStats struct {
	TornWrites   int64
	ShortReads   int64
	FsyncFails   int64
	DiskFulls    int64
	CorruptReads int64
}

// StorageInjector makes storage-fault decisions. Unlike the measurement
// plane's Injector (single-threaded per Doctor), files are opened and
// used from many shard goroutines, so the delivered-fault counters are
// atomics; the random decision streams stay lock-free because each
// opened file derives its own private sub-streams from (seed, name).
type StorageInjector struct {
	seed  uint64
	rates StorageRates

	// files caches the per-name decision streams so reopening a file
	// continues its sequence instead of restarting it. Guarded by mu;
	// taken only at OpenFile. Two concurrently open handles on one name
	// would share streams — callers (the per-shard WAL) never do that.
	mu    sync.Mutex
	files map[string]*fileStreams

	tornWrites   atomic.Int64
	shortReads   atomic.Int64
	fsyncFails   atomic.Int64
	diskFulls    atomic.Int64
	corruptReads atomic.Int64
}

// NewStorage builds a storage injector whose per-file decisions are a
// pure function of (seed, file name, operation sequence on that file).
func NewStorage(seed uint64, rates StorageRates) *StorageInjector {
	return &StorageInjector{seed: seed, rates: rates, files: make(map[string]*fileStreams)}
}

// fileStreams is one file's private decision streams, one per fault kind.
type fileStreams struct {
	torn, short, fsync, full, corrupt *simrand.Rand
}

// streams returns name's decision streams, creating them on first open.
func (in *StorageInjector) streams(name string) *fileStreams {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.files[name]
	if st == nil {
		root := simrand.New(in.seed).Derive("fault/storage").Derive(name)
		st = &fileStreams{
			torn:    root.Derive("torn-write"),
			short:   root.Derive("short-read"),
			fsync:   root.Derive("fsync-fail"),
			full:    root.Derive("disk-full"),
			corrupt: root.Derive("corrupt-read"),
		}
		in.files[name] = st
	}
	return st
}

// Rates returns the configured rates (zero for a nil injector).
func (in *StorageInjector) Rates() StorageRates {
	if in == nil {
		return StorageRates{}
	}
	return in.rates
}

// Stats returns the faults delivered so far (zero for a nil injector).
func (in *StorageInjector) Stats() StorageStats {
	if in == nil {
		return StorageStats{}
	}
	return StorageStats{
		TornWrites:   in.tornWrites.Load(),
		ShortReads:   in.shortReads.Load(),
		FsyncFails:   in.fsyncFails.Load(),
		DiskFulls:    in.diskFulls.Load(),
		CorruptReads: in.corruptReads.Load(),
	}
}

// RegisterStorageStats registers hangdoctor_fault_storage_* callback
// counters into reg, reading delivered-fault counts from get at snapshot
// time — the storage-plane twin of RegisterStats.
func RegisterStorageStats(reg *obs.Registry, get func() StorageStats) {
	for _, c := range []struct {
		name, help string
		sel        func(StorageStats) int64
	}{
		{"hangdoctor_fault_storage_torn_writes_total", "Injected torn (partial) writes.", func(s StorageStats) int64 { return s.TornWrites }},
		{"hangdoctor_fault_storage_short_reads_total", "Injected short reads.", func(s StorageStats) int64 { return s.ShortReads }},
		{"hangdoctor_fault_storage_fsync_failures_total", "Injected fsync failures.", func(s StorageStats) int64 { return s.FsyncFails }},
		{"hangdoctor_fault_storage_disk_fulls_total", "Injected disk-full write refusals.", func(s StorageStats) int64 { return s.DiskFulls }},
		{"hangdoctor_fault_storage_corrupt_reads_total", "Injected read corruptions (bit flips).", func(s StorageStats) int64 { return s.CorruptReads }},
	} {
		sel := c.sel
		reg.CounterFunc(c.name, c.help, func() int64 { return sel(get()) })
	}
}

// FaultyFS wraps fs so every file opened through it draws storage faults
// from in. A nil injector (or all-zero rates) returns fs unchanged, so
// the fault-free configuration is bit-identical to no wrapper at all.
func FaultyFS(base FS, in *StorageInjector) FS {
	if in == nil || in.rates.Zero() {
		return base
	}
	return &faultyFS{base: base, in: in}
}

type faultyFS struct {
	base FS
	in   *StorageInjector
}

func (f *faultyFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: file, in: f.in, s: f.in.streams(name)}, nil
}

func (f *faultyFS) Rename(oldpath, newpath string) error { return f.base.Rename(oldpath, newpath) }
func (f *faultyFS) Remove(name string) error             { return f.base.Remove(name) }
func (f *faultyFS) MkdirAll(path string, perm fs.FileMode) error {
	return f.base.MkdirAll(path, perm)
}

// faultyFile injects faults on one handle. Each fault kind draws from its
// own derived sub-stream, as everywhere else in this package.
type faultyFile struct {
	f  File
	in *StorageInjector
	s  *fileStreams
}

func (f *faultyFile) Write(p []byte) (int, error) {
	if fire(f.s.torn, f.in.rates.TornWrite) {
		f.in.tornWrites.Add(1)
		// A random strict prefix lands; the rest is lost mid-write.
		n := 0
		if len(p) > 1 {
			n = f.s.torn.Intn(len(p))
		}
		if n > 0 {
			if wn, err := f.f.Write(p[:n]); err != nil {
				return wn, err
			}
		}
		return n, ErrTornWrite
	}
	if fire(f.s.full, f.in.rates.DiskFull) {
		f.in.diskFulls.Add(1)
		return 0, ErrDiskFull
	}
	return f.f.Write(p)
}

func (f *faultyFile) Read(p []byte) (int, error) {
	if len(p) > 1 && fire(f.s.short, f.in.rates.ShortRead) {
		// Shrink the request before it reaches the file: a short read
		// returns fewer bytes with a nil error (io.Reader-legal, the case
		// sloppy decoders mishandle) — it never consumes bytes it does not
		// report, which would be data loss rather than a short read.
		f.in.shortReads.Add(1)
		p = p[:1+f.s.short.Intn(len(p)-1)]
	}
	n, err := f.f.Read(p)
	if n > 0 && fire(f.s.corrupt, f.in.rates.CorruptRead) {
		f.in.corruptReads.Add(1)
		p[f.s.corrupt.Intn(n)] ^= 0x40
	}
	return n, err
}

func (f *faultyFile) Sync() error {
	if fire(f.s.fsync, f.in.rates.FsyncFail) {
		f.in.fsyncFails.Add(1)
		return ErrFsyncFail
	}
	return f.f.Sync()
}

func (f *faultyFile) Truncate(size int64) error { return f.f.Truncate(size) }
func (f *faultyFile) Close() error              { return f.f.Close() }
