// Package fault is the seeded, deterministic fault-injection layer of the
// simulated substrate. On a real phone Hang Doctor's two data sources are
// unreliable: perf_event_open fails under fd pressure or seccomp policy,
// PMU counters get multiplexed away mid-window, the render thread may not
// exist yet (cold start) or may be unobservable, and stack dumps are missed
// or truncated when the device is loaded. The injector models each of those
// failures with an independent rate and a private seed-derived RNG
// sub-stream, so that (a) runs are bit-reproducible from the seed, and
// (b) enabling one fault kind never perturbs the random decisions of
// another, or of the simulation itself.
//
// A nil *Injector is valid and injects nothing; every decision method
// returns the no-fault answer without drawing random numbers. Rates at
// exactly 0 likewise never draw, so a zero-rate injector is bit-identical
// to no injector at all — the property the degraded-mode tests pin down.
package fault

import (
	"fmt"

	"hangdoctor/internal/obs"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/simrand"
)

// Rates holds one independent probability per modeled fault. All rates are
// clamped to [0, 1] at decision time; the zero value injects nothing.
type Rates struct {
	// PerfOpenFail is the probability that opening a perf session fails
	// (perf_event_open returning EMFILE/EACCES on a real device).
	PerfOpenFail float64
	// CounterDrop is the per-(thread, event) probability that a counter's
	// value for a window is lost (multiplexed away for the whole window).
	CounterDrop float64
	// RenderLoss is the probability that the render thread's counters are
	// unavailable for a session, forcing main-thread-only operation.
	RenderLoss float64
	// StackMiss is the probability that one stack sample is lost entirely
	// (the dump timed out or the sampler was preempted).
	StackMiss float64
	// StackTruncate is the probability that one stack sample survives but
	// loses its outermost frames (partial dump under load).
	StackTruncate float64
	// SamplerOverrun is the probability that one sampler tick is late,
	// stretching the next sampling interval (CPU starvation of the
	// monitoring thread).
	SamplerOverrun float64
	// WorkerStackMiss is the probability that one pool-worker stack dump is
	// lost. Worker dumps fail independently of (and in practice more often
	// than) main-thread dumps: workers are not ptrace-stopped by the input
	// dispatch path, so the sampler races their scheduling.
	WorkerStackMiss float64
}

// Zero reports whether every rate is zero.
func (r Rates) Zero() bool {
	return r.PerfOpenFail == 0 && r.CounterDrop == 0 && r.RenderLoss == 0 &&
		r.StackMiss == 0 && r.StackTruncate == 0 && r.SamplerOverrun == 0 &&
		r.WorkerStackMiss == 0
}

// String renders the non-zero rates compactly ("open=0.10 stack=0.50").
func (r Rates) String() string {
	s := ""
	add := func(name string, v float64) {
		if v != 0 {
			if s != "" {
				s += " "
			}
			s += fmt.Sprintf("%s=%.2f", name, v)
		}
	}
	add("open", r.PerfOpenFail)
	add("counter", r.CounterDrop)
	add("render", r.RenderLoss)
	add("stack", r.StackMiss)
	add("trunc", r.StackTruncate)
	add("overrun", r.SamplerOverrun)
	add("worker", r.WorkerStackMiss)
	if s == "" {
		return "none"
	}
	return s
}

// Stats counts the faults an injector actually delivered, for the chaos
// harness's ground-truth view of how hostile a run really was.
type Stats struct {
	PerfOpenFails      int
	CountersDropped    int
	RenderLosses       int
	StacksMissed       int
	StacksTruncated    int
	SamplerOverruns    int
	WorkerStacksMissed int
}

// Injector makes the fault decisions. Each fault kind draws from its own
// derived sub-stream so kinds stay independent.
type Injector struct {
	rates Rates
	stats Stats

	openRng    *simrand.Rand
	counterRng *simrand.Rand
	renderRng  *simrand.Rand
	stackRng   *simrand.Rand
	truncRng   *simrand.Rand
	overrunRng *simrand.Rand
	workerRng  *simrand.Rand
}

// New builds an injector whose decisions are a pure function of seed and
// the sequence of decision calls.
func New(seed uint64, rates Rates) *Injector {
	root := simrand.New(seed)
	return &Injector{
		rates:      rates,
		openRng:    root.Derive("fault/perf-open"),
		counterRng: root.Derive("fault/counter-drop"),
		renderRng:  root.Derive("fault/render-loss"),
		stackRng:   root.Derive("fault/stack-miss"),
		truncRng:   root.Derive("fault/stack-trunc"),
		overrunRng: root.Derive("fault/sampler-overrun"),
		workerRng:  root.Derive("fault/worker-stack-miss"),
	}
}

// Rates returns the configured rates (zero Rates for a nil injector).
func (in *Injector) Rates() Rates {
	if in == nil {
		return Rates{}
	}
	return in.rates
}

// Stats returns the faults delivered so far (zero for a nil injector).
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}

// RegisterStats registers hangdoctor_fault_* callback counters into reg,
// reading delivered-fault counts from get at snapshot time, so the chaos
// ground truth shows up on the same exposition surface as the Doctor's
// health view. Reading through a provider rather than a captured injector
// matters: injectors are installed on a session after the detector
// attaches (and may be swapped between runs), and the registered series
// must always reflect the injector currently wired to the measurement
// plane. Injector stats mutate on the simulation goroutine; snapshot
// reads must not race a running simulation (they never do — both the sim
// and its scrapers are single-threaded per Doctor).
func RegisterStats(reg *obs.Registry, get func() Stats) {
	for _, c := range []struct {
		name, help string
		sel        func(Stats) int
	}{
		{"hangdoctor_fault_perf_open_fails_total", "Injected perf_event_open failures.", func(s Stats) int { return s.PerfOpenFails }},
		{"hangdoctor_fault_counters_dropped_total", "Injected per-window counter dropouts.", func(s Stats) int { return s.CountersDropped }},
		{"hangdoctor_fault_render_losses_total", "Injected render-thread counter losses.", func(s Stats) int { return s.RenderLosses }},
		{"hangdoctor_fault_stacks_missed_total", "Injected whole-stack sample losses.", func(s Stats) int { return s.StacksMissed }},
		{"hangdoctor_fault_stacks_truncated_total", "Injected stack truncations.", func(s Stats) int { return s.StacksTruncated }},
		{"hangdoctor_fault_sampler_overruns_total", "Injected late sampler ticks.", func(s Stats) int { return s.SamplerOverruns }},
		{"hangdoctor_fault_worker_stacks_missed_total", "Injected pool-worker stack sample losses.", func(s Stats) int { return s.WorkerStacksMissed }},
	} {
		sel := c.sel
		reg.CounterFunc(c.name, c.help, func() int64 { return int64(sel(get())) })
	}
}

// MetricsInto registers this injector's own delivered-fault counters into
// reg (a no-op on a nil injector) — the standalone-injector convenience
// over RegisterStats.
func (in *Injector) MetricsInto(reg *obs.Registry) {
	if in == nil {
		return
	}
	RegisterStats(reg, in.Stats)
}

// fire draws one decision at rate p from rng. It never draws when the rate
// is <= 0, so a zero-rate stream stays untouched and bit-reproducibility
// with the no-injector configuration holds.
func fire(rng *simrand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return rng.Float64() < p
}

// PerfOpenFails decides whether one perf-session open attempt fails.
func (in *Injector) PerfOpenFails() bool {
	if in == nil || !fire(in.openRng, in.rates.PerfOpenFail) {
		return false
	}
	in.stats.PerfOpenFails++
	return true
}

// CounterDropped decides whether one (thread, event) counter value is lost
// for the window being read.
func (in *Injector) CounterDropped() bool {
	if in == nil || !fire(in.counterRng, in.rates.CounterDrop) {
		return false
	}
	in.stats.CountersDropped++
	return true
}

// RenderUnavailable decides whether the render thread's counters are
// unavailable for a session being opened.
func (in *Injector) RenderUnavailable() bool {
	if in == nil || !fire(in.renderRng, in.rates.RenderLoss) {
		return false
	}
	in.stats.RenderLosses++
	return true
}

// StackMissed decides whether one stack sample is lost entirely.
func (in *Injector) StackMissed() bool {
	if in == nil || !fire(in.stackRng, in.rates.StackMiss) {
		return false
	}
	in.stats.StacksMissed++
	return true
}

// WorkerStackMissed decides whether one pool-worker stack sample is lost.
func (in *Injector) WorkerStackMissed() bool {
	if in == nil || !fire(in.workerRng, in.rates.WorkerStackMiss) {
		return false
	}
	in.stats.WorkerStacksMissed++
	return true
}

// TruncateTo decides whether a stack dump of the given depth is truncated;
// when it is, it returns the number of innermost frames that survive
// (always >= 1 and < depth). Stacks of depth <= 1 cannot be truncated.
func (in *Injector) TruncateTo(depth int) (int, bool) {
	if in == nil || depth <= 1 || !fire(in.truncRng, in.rates.StackTruncate) {
		return depth, false
	}
	in.stats.StacksTruncated++
	return 1 + in.truncRng.Intn(depth-1), true
}

// OverrunExtra decides whether one sampler tick overruns; when it does, it
// returns the extra delay (1-3 periods) to add to the next interval.
func (in *Injector) OverrunExtra(period simclock.Duration) (simclock.Duration, bool) {
	if in == nil || period <= 0 || !fire(in.overrunRng, in.rates.SamplerOverrun) {
		return 0, false
	}
	in.stats.SamplerOverruns++
	return period * simclock.Duration(1+in.overrunRng.Intn(3)), true
}
