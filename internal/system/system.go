// Package system implements the paper's stated future work (§3.5): Hang
// Doctor "generalized and integrated into the OS as a more general framework
// that improves the currently used ANR tool". It models a whole device —
// several installed apps sharing one simulated kernel — with an OS-level
// HangService that attaches a Hang Doctor instance to every app, tracks the
// foreground app's soft hangs, records stock-Android ANR events (the 5 s
// dialog) for comparison, and aggregates the per-app Hang Bug Reports into
// one device-wide view.
//
// Background apps are first-class here: their periodic sync jobs run on the
// shared scheduler and preempt the foreground app's threads, replacing the
// synthetic interference threads a single-app session uses.
package system

import (
	"fmt"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/core"
	"hangdoctor/internal/cpu"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/simrand"
)

// Process is one installed app: its session on the shared kernel plus its
// background-sync worker.
type Process struct {
	App     *app.App
	Session *app.Session

	dev      *Device
	worker   *cpu.Thread
	bgActive bool
	rng      *simrand.Rand
}

// Foreground reports whether this process currently owns the screen.
func (p *Process) Foreground() bool { return p.dev.foreground == p }

// startBackground arms the periodic sync loop on the worker thread.
func (p *Process) startBackground() {
	if p.bgActive {
		return
	}
	p.bgActive = true
	if p.worker.QueueLen() == 0 {
		p.worker.Enqueue(cpu.Block{Dur: simclock.Duration(p.rng.Jitter(float64(p.dev.SyncGap), 0.4))})
	}
}

// stopBackground lets the current sync burst finish and then parks the
// worker (the OnIdle hook checks bgActive).
func (p *Process) stopBackground() { p.bgActive = false }

// Device is a simulated phone running multiple apps on one kernel.
type Device struct {
	Model app.Device
	Clk   *simclock.Clock
	Sched *cpu.Scheduler

	// SyncGap and SyncBurst shape background apps' periodic work.
	SyncGap   simclock.Duration
	SyncBurst simclock.Duration

	procs      []*Process
	foreground *Process
	svc        *HangService
	rng        *simrand.Rand
}

// NewDevice boots a device. The model's per-session interference threads
// are disabled: on a multi-app device, contention comes from the other
// installed apps.
func NewDevice(model app.Device, seed uint64) (*Device, error) {
	if model.Cores <= 0 {
		return nil, fmt.Errorf("system: device model %q has no cores", model.Name)
	}
	model.BGThreads = 0
	clk := simclock.New()
	return &Device{
		Model:     model,
		Clk:       clk,
		Sched:     cpu.New(clk, model.Cores),
		SyncGap:   9 * simclock.Millisecond,
		SyncBurst: 6 * simclock.Millisecond,
		rng:       simrand.New(seed).Derive("device/" + model.Name),
	}, nil
}

// Install adds an app to the device. The first installed app starts in the
// foreground; the rest run in the background.
func (d *Device) Install(a *app.App) (*Process, error) {
	for _, p := range d.procs {
		if p.App.Name == a.Name {
			return nil, fmt.Errorf("system: %s already installed", a.Name)
		}
	}
	sess, err := app.NewSessionOn(d.Clk, d.Sched, a, d.Model, d.rng.Derive("proc/"+a.Name))
	if err != nil {
		return nil, err
	}
	p := &Process{
		App:     a,
		Session: sess,
		dev:     d,
		worker:  d.Sched.NewThread("sync:" + a.Name),
		rng:     d.rng.Derive("sync/" + a.Name),
	}
	p.worker.SetOnIdle(func() {
		if !p.bgActive {
			return
		}
		p.worker.Enqueue(
			cpu.Block{Dur: simclock.Duration(p.rng.Jitter(float64(d.SyncGap), 0.4))},
			cpu.Compute{Dur: simclock.Duration(p.rng.Jitter(float64(d.SyncBurst), 0.4))},
		)
	})
	d.procs = append(d.procs, p)
	if d.foreground == nil {
		d.foreground = p
	} else {
		p.startBackground()
	}
	if d.svc != nil {
		d.svc.attach(p)
	}
	return p, nil
}

// Processes returns the installed processes in install order.
func (d *Device) Processes() []*Process { return d.procs }

// Foreground returns the process owning the screen.
func (d *Device) Foreground() *Process { return d.foreground }

// SwitchTo brings p to the foreground; the previous foreground app moves to
// the background and resumes its sync jobs.
func (d *Device) SwitchTo(p *Process) error {
	if p.dev != d {
		return fmt.Errorf("system: process %s not on this device", p.App.Name)
	}
	if d.foreground == p {
		return nil
	}
	if d.foreground != nil {
		d.foreground.startBackground()
	}
	p.stopBackground()
	d.foreground = p
	return nil
}

// Perform executes a user action on the foreground app.
func (d *Device) Perform(actionName string) (*app.ActionExec, error) {
	if d.foreground == nil {
		return nil, fmt.Errorf("system: no foreground app")
	}
	act, ok := d.foreground.App.Action(actionName)
	if !ok {
		return nil, fmt.Errorf("system: %s has no action %q", d.foreground.App.Name, actionName)
	}
	return d.foreground.Session.Perform(act), nil
}

// Idle advances device time (screen off, user reading, ...). Background
// syncs keep running.
func (d *Device) Idle(dur simclock.Duration) {
	d.Clk.RunUntil(d.Clk.Now().Add(dur))
}

// EnableHangService boots the OS-level service: a Hang Doctor per installed
// app (present and future) plus the stock ANR watchdog.
func (d *Device) EnableHangService(cfg core.Config) *HangService {
	if d.svc != nil {
		return d.svc
	}
	d.svc = &HangService{dev: d, cfg: cfg, doctors: map[*Process]*core.Doctor{}}
	for _, p := range d.procs {
		d.svc.attach(p)
	}
	return d.svc
}

// Service returns the hang service, or nil if not enabled.
func (d *Device) Service() *HangService { return d.svc }
