package system

import (
	"strings"
	"testing"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/core"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/simclock"
)

func bootDevice(t *testing.T, appNames ...string) (*Device, *corpus.Corpus, []*Process) {
	t.Helper()
	c := corpus.Build()
	d, err := NewDevice(app.LGV10(), 42)
	if err != nil {
		t.Fatal(err)
	}
	var procs []*Process
	for _, name := range appNames {
		p, err := d.Install(c.MustApp(name))
		if err != nil {
			t.Fatal(err)
		}
		procs = append(procs, p)
	}
	return d, c, procs
}

func TestInstallAndForeground(t *testing.T) {
	d, _, procs := bootDevice(t, "K9-Mail", "AndStatus", "Omni-Notes")
	if d.Foreground() != procs[0] {
		t.Fatal("first installed app not foreground")
	}
	if !procs[0].Foreground() || procs[1].Foreground() {
		t.Fatal("Foreground() accessor wrong")
	}
	if err := d.SwitchTo(procs[1]); err != nil {
		t.Fatal(err)
	}
	if d.Foreground() != procs[1] {
		t.Fatal("switch failed")
	}
	// Reinstall is rejected.
	if _, err := d.Install(procs[0].App); err == nil {
		t.Fatal("duplicate install accepted")
	}
	if len(d.Processes()) != 3 {
		t.Fatalf("processes = %d", len(d.Processes()))
	}
}

func TestPerformOnForeground(t *testing.T) {
	d, _, _ := bootDevice(t, "K9-Mail")
	exec, err := d.Perform("Folders")
	if err != nil {
		t.Fatal(err)
	}
	if exec.ResponseTime() <= 0 {
		t.Fatal("no response time recorded")
	}
	if _, err := d.Perform("No Such Action"); err == nil {
		t.Fatal("unknown action accepted")
	}
}

func TestBackgroundSyncPreemptsForeground(t *testing.T) {
	// With two background apps syncing, a long foreground compute gets
	// preempted — cross-app contention replaces synthetic interference.
	d, _, procs := bootDevice(t, "QKSMS", "K9-Mail", "AndStatus")
	_ = procs
	before := d.Foreground().Session.MainThread().Counters()
	// Backup Messages is a ~420ms CPU loop.
	for i := 0; i < 6; i++ {
		if _, err := d.Perform("Backup Messages"); err != nil {
			t.Fatal(err)
		}
		d.Idle(simclock.Second)
	}
	delta := d.Foreground().Session.MainThread().Counters().Sub(before)
	if delta.InvoluntaryCtxSwitch < 5 {
		t.Fatalf("foreground loop preempted only %d times; background apps idle?", delta.InvoluntaryCtxSwitch)
	}
	// Background workers actually consumed CPU.
	var syncCPU int64
	for _, p := range d.Processes()[1:] {
		syncCPU += p.worker.Counters().TaskClock
	}
	if syncCPU == 0 {
		t.Fatal("background sync never ran")
	}
}

func TestForegroundAppDoesNotSync(t *testing.T) {
	d, _, procs := bootDevice(t, "K9-Mail", "AndStatus")
	d.Idle(5 * simclock.Second)
	fgCPU := procs[0].worker.Counters().TaskClock
	bgCPU := procs[1].worker.Counters().TaskClock
	if fgCPU != 0 {
		t.Fatalf("foreground app ran sync jobs (%d ns)", fgCPU)
	}
	if bgCPU == 0 {
		t.Fatal("background app never synced")
	}
	// After switching, roles swap.
	d.SwitchTo(procs[1])
	d.Idle(5 * simclock.Second)
	if procs[0].worker.Counters().TaskClock == 0 {
		t.Fatal("backgrounded app did not start syncing")
	}
}

func TestHangServiceFindsBugsAcrossApps(t *testing.T) {
	d, _, procs := bootDevice(t, "K9-Mail", "Omni-Notes")
	svc := d.EnableHangService(core.Config{})

	driveApp := func(p *Process, n int) {
		d.SwitchTo(p)
		for _, act := range corpus.Trace(p.App, 42, n) {
			p.Session.Perform(act)
			d.Idle(simclock.Second)
		}
	}
	driveApp(procs[0], 80)
	driveApp(procs[1], 80)

	found := svc.SoftHangBugsFound()
	wantSub := []string{
		"K9-Mail: K9-Mail/Open Email -> org.htmlcleaner.HtmlCleaner.clean",
		"Omni-Notes:",
	}
	for _, sub := range wantSub {
		ok := false
		for _, f := range found {
			if strings.Contains(f, sub) {
				ok = true
			}
		}
		if !ok {
			t.Errorf("service findings missing %q; got %v", sub, found)
		}
	}

	// The device-wide report spans both apps.
	rep := svc.DeviceReport()
	apps := map[string]bool{}
	for _, e := range rep.Entries() {
		apps[e.App] = true
	}
	if !apps["K9-Mail"] || !apps["Omni-Notes"] {
		t.Fatalf("device report apps = %v", apps)
	}

	// The stock ANR tool saw nothing: every hang is below 5s.
	if n := len(svc.ANRs()); n != 0 {
		t.Fatalf("ANR tool fired %d times on sub-5s hangs", n)
	}
}

func TestHangServiceAttachesToLaterInstalls(t *testing.T) {
	d, c, _ := bootDevice(t, "K9-Mail")
	svc := d.EnableHangService(core.Config{})
	p, err := d.Install(c.MustApp("SkyTube"))
	if err != nil {
		t.Fatal(err)
	}
	if svc.Doctor(p) == nil {
		t.Fatal("service did not attach to a later install")
	}
	d.SwitchTo(p)
	for _, act := range corpus.Trace(p.App, 7, 60) {
		p.Session.Perform(act)
		d.Idle(simclock.Second)
	}
	if len(svc.Doctor(p).Detections()) == 0 {
		t.Fatal("no detections for the later-installed app")
	}
}

func TestANRWatchdogFiresAboveFiveSeconds(t *testing.T) {
	// A pathological app whose action blocks for 6s must trip the ANR tool.
	c := corpus.Build()
	read, _ := c.Registry.API("java.io.FileInputStream.read")
	frozen := &app.App{
		Name:     "FrozenApp",
		Registry: c.Registry,
		Actions: []*app.Action{{
			Name: "Freeze",
			Events: []*app.InputEvent{{Name: "e", Ops: []*app.Op{{
				Name:  "read",
				API:   read,
				Heavy: app.IOHeavy(200*simclock.Millisecond, 12, 500*simclock.Millisecond),
			}}}},
		}},
	}
	d, err := NewDevice(app.LGV10(), 5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Install(frozen)
	if err != nil {
		t.Fatal(err)
	}
	svc := d.EnableHangService(core.Config{})
	d.SwitchTo(p)
	if _, err := d.Perform("Freeze"); err != nil {
		t.Fatal(err)
	}
	d.Idle(10 * simclock.Second) // let the 5s watchdog fire mid-hang
	if len(svc.ANRs()) == 0 {
		t.Fatal("ANR watchdog missed a >5s hang")
	}
	ev := svc.ANRs()[0]
	if ev.App != "FrozenApp" || ev.Response != ANRTimeout {
		t.Fatalf("ANR event = %+v", ev)
	}
}

func TestDeviceErrors(t *testing.T) {
	if _, err := NewDevice(app.Device{}, 1); err == nil {
		t.Fatal("zero-core device accepted")
	}
	d, _, _ := bootDevice(t, "K9-Mail")
	other, _, otherProcs := bootDevice(t, "AndStatus")
	_ = other
	if err := d.SwitchTo(otherProcs[0]); err == nil {
		t.Fatal("cross-device switch accepted")
	}
}
