package system

import (
	"sort"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/core"
	"hangdoctor/internal/simclock"
)

// ANRTimeout is stock Android's Application-Not-Responding threshold. The
// paper's motivation: it misses everything below 5 s — i.e. essentially all
// soft hangs.
const ANRTimeout = 5 * simclock.Second

// ANREvent records one would-be ANR dialog.
type ANREvent struct {
	App       string
	ActionUID string
	Response  simclock.Duration
	At        simclock.Time
}

// HangService is the OS-integrated generalization of Hang Doctor: one
// doctor per installed app, plus the legacy ANR watchdog it improves on.
type HangService struct {
	dev     *Device
	cfg     core.Config
	doctors map[*Process]*core.Doctor
	anrs    []ANREvent
}

// attach wires a doctor and the ANR watchdog into a process's session.
func (s *HangService) attach(p *Process) {
	d := core.New(s.cfg)
	d.Attach(p.Session)
	p.Session.AddListener(d)
	s.doctors[p] = d
	p.Session.AddListener(&anrWatchdog{svc: s, proc: p})
}

// Doctor returns the per-app doctor.
func (s *HangService) Doctor(p *Process) *core.Doctor { return s.doctors[p] }

// ANRs returns the ANR dialogs the stock tool would have shown.
func (s *HangService) ANRs() []ANREvent { return s.anrs }

// SoftHangBugsFound returns the distinct (app, action, root cause) triples
// diagnosed across every installed app, sorted.
func (s *HangService) SoftHangBugsFound() []string {
	var out []string
	for p, d := range s.doctors {
		for _, det := range d.Detections() {
			out = append(out, p.App.Name+": "+det.ActionUID+" -> "+det.RootCause)
		}
	}
	sort.Strings(out)
	return out
}

// DeviceReport merges every app's Hang Bug Report into one device-wide
// view, the artifact the OS would sync to developers.
func (s *HangService) DeviceReport() *core.Report {
	out := core.NewReport()
	for _, d := range s.doctors {
		out.Merge(d.Report())
	}
	return out
}

// anrWatchdog reproduces the stock 5 s ANR tool for comparison.
type anrWatchdog struct {
	svc  *HangService
	proc *Process
}

func (w *anrWatchdog) ActionStart(e *app.ActionExec) {}

func (w *anrWatchdog) EventStart(e *app.ActionExec, ev *app.EventExec) {
	evRef := ev
	w.proc.Session.Clk.After(ANRTimeout, func() {
		if !evRef.Done {
			w.svc.anrs = append(w.svc.anrs, ANREvent{
				App:       w.proc.App.Name,
				ActionUID: e.Action.UID,
				Response:  ANRTimeout,
				At:        w.proc.Session.Clk.Now(),
			})
		}
	})
}

func (w *anrWatchdog) EventEnd(e *app.ActionExec, ev *app.EventExec) {}
func (w *anrWatchdog) ActionEnd(e *app.ActionExec)                   {}
