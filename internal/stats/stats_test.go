package stats

import (
	"math"
	"testing"
	"testing/quick"

	"hangdoctor/internal/simrand"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); !almost(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, neg); !almost(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", got)
	}
}

func TestPearsonConstantVector(t *testing.T) {
	x := []float64{3, 3, 3}
	y := []float64{1, 2, 3}
	if got := Pearson(x, y); got != 0 {
		t.Fatalf("constant vector Pearson = %v, want 0", got)
	}
}

func TestPearsonMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

func TestPearsonKnownValue(t *testing.T) {
	// Hand-computed example.
	x := []float64{1, 2, 3, 4}
	y := []float64{1, 3, 2, 5}
	if got := Pearson(x, y); !almost(got, 0.8315218406, 1e-6) {
		t.Fatalf("Pearson = %v", got)
	}
}

func TestPearsonSymmetricAndBounded(t *testing.T) {
	rng := simrand.New(4)
	f := func(seed uint32) bool {
		r := rng.Derive(string(rune(seed)))
		n := 3 + r.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64() * 10
			y[i] = r.NormFloat64() * 10
		}
		p1, p2 := Pearson(x, y), Pearson(y, x)
		if !almost(p1, p2, 1e-12) {
			return false
		}
		return p1 >= -1-1e-12 && p1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonInvariantToAffineTransform(t *testing.T) {
	rng := simrand.New(8)
	x := make([]float64, 40)
	y := make([]float64, 40)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = x[i] + rng.NormFloat64()*0.5
	}
	p := Pearson(x, y)
	scaled := make([]float64, len(x))
	for i := range x {
		scaled[i] = 3*x[i] + 7
	}
	if got := Pearson(scaled, y); !almost(got, p, 1e-9) {
		t.Fatalf("affine transform changed correlation: %v vs %v", got, p)
	}
}

func TestMeanAndQuantile(t *testing.T) {
	x := []float64{4, 1, 3, 2}
	if got := Mean(x); !almost(got, 2.5, 1e-12) {
		t.Fatalf("Mean = %v", got)
	}
	if got := Quantile(x, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(x, 1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(x, 0.5); !almost(got, 2.5, 1e-12) {
		t.Fatalf("median = %v", got)
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}

func TestRankByCorrelation(t *testing.T) {
	labels := []float64{1, 1, 1, 0, 0, 0}
	samples := map[string][]float64{
		"strong": {10, 11, 12, 1, 2, 3},
		"weak":   {5, 1, 9, 4, 6, 2},
		"anti":   {1, 2, 3, 10, 11, 12},
	}
	r := RankByCorrelation(samples, labels)
	if r[0].Name != "strong" || r[len(r)-1].Name != "anti" {
		t.Fatalf("ranking = %+v", r)
	}
	if got := TopNames(r, 2); len(got) != 2 || got[0] != "strong" {
		t.Fatalf("TopNames = %v", got)
	}
	if got := TopNames(r, 10); len(got) != 3 {
		t.Fatalf("TopNames overflow = %v", got)
	}
}

func TestSubsampleAndOverlap(t *testing.T) {
	rng := simrand.New(5)
	labels := make([]float64, 60)
	strong := make([]float64, 60)
	noise := make([]float64, 60)
	for i := range labels {
		if i < 30 {
			labels[i] = 1
			strong[i] = 100 + rng.NormFloat64()*5
		} else {
			strong[i] = 10 + rng.NormFloat64()*5
		}
		noise[i] = rng.NormFloat64()
	}
	samples := map[string][]float64{"strong": strong, "noise": noise}
	full := RankByCorrelation(samples, labels)
	sub := Subsample(samples, labels, 0.5, rng)
	if len(sub) != 2 {
		t.Fatalf("sub ranking size = %d", len(sub))
	}
	// A strong separator stays on top in any half of the data.
	if sub[0].Name != "strong" {
		t.Fatalf("subsample ranking = %+v", sub)
	}
	if got := OverlapCount(full, sub, 1); got != 1 {
		t.Fatalf("overlap = %d", got)
	}
}

func TestGreedySelectSingleEventSuffices(t *testing.T) {
	labels := []float64{1, 1, 1, 0, 0, 0}
	samples := map[string][]float64{
		"good": {10, 12, 11, 1, 2, 3},
		"bad":  {1, 1, 1, 1, 1, 1},
	}
	ranking := RankByCorrelation(samples, labels)
	sel := GreedySelect(ranking, samples, labels, 5)
	if len(sel.Conditions) != 1 || sel.Conditions[0].Name != "good" {
		t.Fatalf("conditions = %+v", sel.Conditions)
	}
	if sel.FalseNegatives != 0 || sel.FalsePositives != 0 {
		t.Fatalf("confusion = %+v", sel)
	}
	if sel.TruePositives != 3 || sel.TrueNegatives != 3 {
		t.Fatalf("confusion = %+v", sel)
	}
	thr := sel.Conditions[0].Threshold
	if thr <= 3 || thr >= 10 {
		t.Fatalf("threshold = %v, want separating gap (3,10)", thr)
	}
}

func TestGreedySelectNeedsTwoEvents(t *testing.T) {
	// Bugs 0-1 separable by event A, bugs 2-3 only by event B.
	labels := []float64{1, 1, 1, 1, 0, 0, 0, 0}
	samples := map[string][]float64{
		"A": {50, 60, 0, 0, 1, 2, 1, 2},
		"B": {0, 0, 70, 80, 3, 1, 2, 3},
	}
	ranking := RankByCorrelation(samples, labels)
	sel := GreedySelect(ranking, samples, labels, 5)
	if len(sel.Conditions) != 2 {
		t.Fatalf("conditions = %+v, want 2", sel.Conditions)
	}
	if sel.FalseNegatives != 0 {
		t.Fatalf("FN = %d, want 0", sel.FalseNegatives)
	}
	if sel.FalsePositives != 0 {
		t.Fatalf("FP = %d", sel.FalsePositives)
	}
}

func TestGreedySelectSkipsUselessEvents(t *testing.T) {
	labels := []float64{1, 1, 0, 0}
	samples := map[string][]float64{
		"useless": {5, 5, 5, 5}, // constant: correlation 0 but try anyway
		"good":    {9, 8, 1, 2},
	}
	ranking := []Ranked{{Name: "useless", Coeff: 0.9}, {Name: "good", Coeff: 0.5}}
	sel := GreedySelect(ranking, samples, labels, 5)
	for _, c := range sel.Conditions {
		if c.Name == "useless" {
			t.Fatalf("useless event selected: %+v", sel.Conditions)
		}
	}
	if sel.FalseNegatives != 0 {
		t.Fatalf("FN = %d", sel.FalseNegatives)
	}
}

func TestGreedySelectRespectsMaxEvents(t *testing.T) {
	// Each bug needs its own event; cap at 2.
	labels := []float64{1, 1, 1, 0}
	samples := map[string][]float64{
		"A": {9, 0, 0, 1},
		"B": {0, 9, 0, 1},
		"C": {0, 0, 9, 1},
	}
	ranking := RankByCorrelation(samples, labels)
	sel := GreedySelect(ranking, samples, labels, 2)
	if len(sel.Conditions) > 2 {
		t.Fatalf("conditions = %d, want <= 2", len(sel.Conditions))
	}
	if sel.FalseNegatives != 1 {
		t.Fatalf("FN = %d, want 1 (third bug uncatchable)", sel.FalseNegatives)
	}
}

func TestSelectionFlag(t *testing.T) {
	sel := Selection{Conditions: []Condition{{Name: "ctx", Threshold: 0}, {Name: "pf", Threshold: 500}}}
	if !sel.Flag(map[string]float64{"ctx": 5, "pf": 100}) {
		t.Fatal("ctx>0 should flag")
	}
	if !sel.Flag(map[string]float64{"ctx": -3, "pf": 900}) {
		t.Fatal("pf>500 should flag")
	}
	if sel.Flag(map[string]float64{"ctx": -3, "pf": 100}) {
		t.Fatal("neither condition met; must not flag")
	}
	if sel.Flag(map[string]float64{"other": 1e9}) {
		t.Fatal("unknown events must not flag")
	}
}

func TestQuantileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestSpearmanMonotoneNonlinear(t *testing.T) {
	// y = x^3 is perfectly monotone: Spearman 1, Pearson < 1.
	x := []float64{-3, -2, -1, 0, 1, 2, 3}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = v * v * v
	}
	if got := Spearman(x, y); !almost(got, 1, 1e-12) {
		t.Fatalf("Spearman = %v, want 1", got)
	}
	if p := Pearson(x, y); p >= 1-1e-9 {
		t.Fatalf("Pearson = %v, expected < 1 on cubic", p)
	}
}

func TestSpearmanTies(t *testing.T) {
	x := []float64{1, 2, 2, 3}
	y := []float64{10, 20, 20, 30}
	if got := Spearman(x, y); !almost(got, 1, 1e-12) {
		t.Fatalf("Spearman with ties = %v, want 1", got)
	}
}

func TestSpearmanMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Spearman([]float64{1}, []float64{1, 2})
}

func TestRanksAverageTies(t *testing.T) {
	r := ranks([]float64{5, 1, 5, 3})
	want := []float64{3.5, 1, 3.5, 2}
	for i := range r {
		if !almost(r[i], want[i], 1e-12) {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestRankBySpearman(t *testing.T) {
	labels := []float64{1, 1, 1, 0, 0, 0}
	samples := map[string][]float64{
		"strong": {100, 900, 400, 1, 2, 3}, // monotone separation, nonlinear scale
		"noise":  {5, 1, 9, 4, 6, 2},
	}
	r := RankBySpearman(samples, labels)
	if r[0].Name != "strong" {
		t.Fatalf("ranking = %+v", r)
	}
}
