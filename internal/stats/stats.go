// Package stats implements the statistical machinery behind S-Checker's
// design (§3.3.1 of the paper): Pearson correlation of performance-event
// samples against soft-hang-bug labels, correlation-ordered ranking of
// events, the greedy minimize-false-negatives-then-false-positives threshold
// search that selects the filter's events, and the training-set sensitivity
// analysis of Table 4.
package stats

import (
	"fmt"
	"math"
	"sort"

	"hangdoctor/internal/simrand"
)

// Pearson returns the Pearson correlation coefficient of x and y. It panics
// on length mismatch and returns 0 when either vector is constant (no
// variance means no linear relationship to measure).
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: Pearson length mismatch %d vs %d", len(x), len(y)))
	}
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Quantile returns the q-quantile (0..1) of x by linear interpolation on the
// sorted copy. It panics on an empty slice.
func Quantile(x []float64, q float64) float64 {
	if len(x) == 0 {
		panic("stats: Quantile of empty slice")
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Ranked is one row of a correlation table.
type Ranked struct {
	Name  string
	Coeff float64
}

// RankByCorrelation computes Pearson(sample vector, labels) for every named
// sample vector and returns rows sorted by coefficient descending (ties
// broken by name for determinism). labels uses 1 for soft hang bug, 0 for
// UI operation.
func RankByCorrelation(samples map[string][]float64, labels []float64) []Ranked {
	out := make([]Ranked, 0, len(samples))
	for name, vec := range samples {
		out = append(out, Ranked{Name: name, Coeff: Pearson(vec, labels)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Coeff != out[j].Coeff {
			return out[i].Coeff > out[j].Coeff
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TopNames returns the first k names of a ranking.
func TopNames(r []Ranked, k int) []string {
	if k > len(r) {
		k = len(r)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = r[i].Name
	}
	return out
}

// Subsample returns the ranking computed on a random fraction frac of the
// sample indices (the paper's Table 4 procedure: rerun the correlation
// analysis on 75% and 50% training sets).
func Subsample(samples map[string][]float64, labels []float64, frac float64, rng *simrand.Rand) []Ranked {
	n := len(labels)
	keep := int(math.Round(float64(n) * frac))
	if keep < 2 {
		keep = 2
	}
	perm := rng.Perm(n)[:keep]
	sort.Ints(perm)
	subLabels := make([]float64, keep)
	for i, idx := range perm {
		subLabels[i] = labels[idx]
	}
	sub := make(map[string][]float64, len(samples))
	for name, vec := range samples {
		sv := make([]float64, keep)
		for i, idx := range perm {
			sv[i] = vec[idx]
		}
		sub[name] = sv
	}
	return RankByCorrelation(sub, subLabels)
}

// OverlapCount returns how many of the first k names two rankings share
// (order-insensitive), the Table 4 stability measure.
func OverlapCount(a, b []Ranked, k int) int {
	inA := map[string]bool{}
	for _, name := range TopNames(a, k) {
		inA[name] = true
	}
	n := 0
	for _, name := range TopNames(b, k) {
		if inA[name] {
			n++
		}
	}
	return n
}

// Condition is one selected filter condition: flag as suspicious when the
// event's value exceeds Threshold.
type Condition struct {
	Name      string
	Threshold float64
}

// Selection is the outcome of the greedy filter design: the chosen
// conditions and the residual confusion counts on the training set.
type Selection struct {
	Conditions     []Condition
	FalseNegatives int
	FalsePositives int
	TruePositives  int
	TrueNegatives  int
}

// Flag evaluates the selection's OR-rule on one sample (values keyed by
// event name; missing events count as not exceeding).
func (s Selection) Flag(values map[string]float64) bool {
	for _, c := range s.Conditions {
		if v, ok := values[c.Name]; ok && v > c.Threshold {
			return true
		}
	}
	return false
}

// bestThreshold finds, for one event, the threshold that best
// *distinguishes* bugs from UI samples given the conditions selected so
// far: it minimizes total residual errors (uncaught bugs plus flagged UI
// samples), breaking ties toward fewer false negatives and then toward the
// larger (more conservative) threshold. This is the paper's per-event step
// — "the best threshold that distinguishes soft hang bugs from UI-APIs by
// minimizing false positives and false negatives" — with residual false
// negatives left for the next event in the greedy OR-union.
//
// A *distinguishing constraint* additionally excludes degenerate
// thresholds: a condition is only admissible if it flags at most half of
// the UI samples; without it, heavily overlapped classes drive the search
// to "flag nearly everything", the opposite of the paper's filter whose
// thresholds sit above the bulk of the UI distribution (Figure 4). The
// flag-nothing sentinel always satisfies the constraint, so a result
// always exists.
func bestThreshold(vec []float64, labels []float64, caught []bool) (thr float64, fn, newFP int) {
	type pt struct{ v, label float64 }
	var pts []pt
	for i := range vec {
		pts = append(pts, pt{vec[i], labels[i]})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].v < pts[j].v })
	candidates := []float64{pts[0].v - 1}
	for i := 1; i < len(pts); i++ {
		if pts[i].v != pts[i-1].v {
			candidates = append(candidates, (pts[i].v+pts[i-1].v)/2)
		}
	}
	candidates = append(candidates, pts[len(pts)-1].v+1)

	negatives := 0
	for i := range labels {
		if labels[i] == 0 {
			negatives++
		}
	}
	fpCap := negatives / 2

	bestFN, bestFP := math.MaxInt32, math.MaxInt32
	bestThr := candidates[len(candidates)-1]
	for _, c := range candidates {
		fnC, fpC := 0, 0
		for i := range vec {
			flagged := caught[i] || vec[i] > c
			if labels[i] == 1 && !flagged {
				fnC++
			}
			if labels[i] == 0 && vec[i] > c {
				fpC++
			}
		}
		if fpC > fpCap {
			continue // not a distinguishing threshold
		}
		better := fnC+fpC < bestFN+bestFP ||
			(fnC+fpC == bestFN+bestFP && fnC < bestFN) ||
			(fnC+fpC == bestFN+bestFP && fnC == bestFN && c > bestThr)
		if better {
			bestFN, bestFP, bestThr = fnC, fpC, c
		}
	}
	return bestThr, bestFN, bestFP
}

// GreedySelect implements the paper's filter-design procedure: walk events
// in correlation order; for each, pick the threshold that minimizes false
// negatives first and false positives second given the conditions selected
// so far; keep adding events until every training bug is caught by at least
// one condition (or maxEvents is reached). Events whose best condition
// catches no additional bug are skipped.
func GreedySelect(ranking []Ranked, samples map[string][]float64, labels []float64, maxEvents int) Selection {
	n := len(labels)
	caught := make([]bool, n)
	flagged := make([]bool, n)
	var sel Selection

	remainingFN := func() int {
		fn := 0
		for i := range labels {
			if labels[i] == 1 && !caught[i] {
				fn++
			}
		}
		return fn
	}

	for _, r := range ranking {
		if len(sel.Conditions) >= maxEvents || remainingFN() == 0 {
			break
		}
		vec, ok := samples[r.Name]
		if !ok {
			continue
		}
		before := remainingFN()
		thr, fnAfter, _ := bestThreshold(vec, labels, caught)
		if fnAfter >= before {
			continue // adds nothing
		}
		sel.Conditions = append(sel.Conditions, Condition{Name: r.Name, Threshold: thr})
		for i := range labels {
			if vec[i] > thr {
				flagged[i] = true
				if labels[i] == 1 {
					caught[i] = true
				}
			}
		}
	}

	for i := range labels {
		switch {
		case labels[i] == 1 && caught[i]:
			sel.TruePositives++
		case labels[i] == 1:
			sel.FalseNegatives++
		case flagged[i]:
			sel.FalsePositives++
		default:
			sel.TrueNegatives++
		}
	}
	return sel
}

// Spearman returns the Spearman rank-correlation coefficient of x and y:
// Pearson correlation on ranks, capturing monotone non-linear relationships.
// The paper leaves non-linear correlation as future work (§3.3.1); this is
// the standard first step. Ties receive average ranks.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: Spearman length mismatch %d vs %d", len(x), len(y)))
	}
	return Pearson(ranks(x), ranks(y))
}

// ranks converts values to average ranks (1-based).
func ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// RankBySpearman mirrors RankByCorrelation using Spearman's coefficient.
func RankBySpearman(samples map[string][]float64, labels []float64) []Ranked {
	out := make([]Ranked, 0, len(samples))
	for name, vec := range samples {
		out = append(out, Ranked{Name: name, Coeff: Spearman(vec, labels)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Coeff != out[j].Coeff {
			return out[i].Coeff > out[j].Coeff
		}
		return out[i].Name < out[j].Name
	})
	return out
}
