package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// HistogramSnapshot is a point-in-time copy of one histogram. Counts are
// per-bucket (non-cumulative); Counts[len(Bounds)] is the +Inf overflow
// bucket, and Count always equals the sum of Counts, so the snapshot is
// internally consistent even when taken mid-traffic.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Quantile estimates the q-quantile (0 < q < 1) with the standard
// histogram_quantile linear interpolation inside the target bucket. It
// returns 0 with no observations; values landing in the +Inf bucket clamp
// to the largest finite bound (the histogram cannot see past it).
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(h.Bounds) {
			// +Inf bucket: the best the histogram can say.
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Series is one metric instance of a family snapshot.
type Series struct {
	// LabelValues aligns with the family's LabelNames; empty for unlabeled
	// metrics.
	LabelValues []string `json:"label_values,omitempty"`
	// Value carries counter and gauge readings.
	Value int64 `json:"value"`
	// Histogram is set for histogram families only.
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// Family is one named metric in a snapshot.
type Family struct {
	Name       string   `json:"name"`
	Help       string   `json:"help,omitempty"`
	Kind       Kind     `json:"kind"`
	LabelNames []string `json:"label_names,omitempty"`
	Series     []Series `json:"series"`
}

// Snapshot is a deterministic point-in-time copy of a registry: families
// sorted by name, series sorted by label values.
type Snapshot struct {
	Families []Family `json:"families"`
}

// Snapshot reads every family once. Counter and gauge reads are individual
// atomic loads; histogram bucket sets are internally consistent (see
// HistogramSnapshot). Callback metrics are evaluated here.
func (r *Registry) Snapshot() Snapshot {
	fams := r.sortedFamilies()
	out := Snapshot{Families: make([]Family, 0, len(fams))}
	for _, f := range fams {
		f.mu.RLock()
		srs := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			srs = append(srs, s)
		}
		f.mu.RUnlock()
		sort.Slice(srs, func(i, j int) bool {
			return seriesKey(srs[i].labelValues) < seriesKey(srs[j].labelValues)
		})
		fam := Family{
			Name: f.name, Help: f.help, Kind: f.kind,
			LabelNames: f.labels,
			Series:     make([]Series, 0, len(srs)),
		}
		for _, s := range srs {
			sr := Series{LabelValues: s.labelValues}
			switch {
			case s.fn != nil:
				sr.Value = s.fn()
			case s.c != nil:
				sr.Value = s.c.Value()
			case s.g != nil:
				sr.Value = s.g.Value()
			case s.h != nil:
				hs := s.h.snapshot()
				sr.Histogram = &hs
			}
			fam.Series = append(fam.Series, sr)
		}
		out.Families = append(out.Families, fam)
	}
	return out
}

// Family returns the named family snapshot (nil if absent) — the
// programmatic read path for tests and end-of-run reporting.
func (s Snapshot) Family(name string) *Family {
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}

// Value returns the value of an unlabeled counter or gauge family (0 if
// absent).
func (s Snapshot) Value(name string) int64 {
	f := s.Family(name)
	if f == nil || len(f.Series) == 0 {
		return 0
	}
	return f.Series[0].Value
}

// Histogram returns the snapshot of an unlabeled histogram family (zero
// value if absent).
func (s Snapshot) Histogram(name string) HistogramSnapshot {
	f := s.Family(name)
	if f == nil || len(f.Series) == 0 || f.Series[0].Histogram == nil {
		return HistogramSnapshot{}
	}
	return *f.Series[0].Histogram
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// labelString renders {k="v",...}; extra appends one more pair (the
// histogram le label). Empty label sets render as "".
func labelString(names, values []string, extraKey, extraVal string) string {
	if len(names) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if extraKey != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraKey, escapeLabel(extraVal))
	}
	b.WriteByte('}')
	return b.String()
}

// WriteTo renders the snapshot in Prometheus text exposition format 0.0.4.
// Output is byte-deterministic for equal snapshots.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	for _, f := range s.Families {
		if len(f.Series) == 0 {
			continue
		}
		fmt.Fprintf(cw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		fmt.Fprintf(cw, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, sr := range f.Series {
			if f.Kind == KindHistogram && sr.Histogram != nil {
				h := sr.Histogram
				var cum uint64
				for i, b := range h.Bounds {
					cum += h.Counts[i]
					fmt.Fprintf(cw, "%s_bucket%s %d\n", f.Name,
						labelString(f.LabelNames, sr.LabelValues, "le", formatFloat(b)), cum)
				}
				fmt.Fprintf(cw, "%s_bucket%s %d\n", f.Name,
					labelString(f.LabelNames, sr.LabelValues, "le", "+Inf"), h.Count)
				fmt.Fprintf(cw, "%s_sum%s %s\n", f.Name,
					labelString(f.LabelNames, sr.LabelValues, "", ""), formatFloat(h.Sum))
				fmt.Fprintf(cw, "%s_count%s %d\n", f.Name,
					labelString(f.LabelNames, sr.LabelValues, "", ""), h.Count)
				continue
			}
			fmt.Fprintf(cw, "%s%s %d\n", f.Name,
				labelString(f.LabelNames, sr.LabelValues, "", ""), sr.Value)
		}
	}
	return cw.n, cw.err
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

// WritePrometheus snapshots the registry and renders it in Prometheus text
// exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	_, err := r.Snapshot().WriteTo(w)
	return err
}

// String renders the exposition text (for tests and debugging).
func (s Snapshot) String() string {
	var b strings.Builder
	s.WriteTo(&b)
	return b.String()
}

// Summary renders a compact human-readable table of the snapshot: one line
// per series, histograms summarized as count/mean/p50/p95/p99. Zero-valued
// counters and gauges are kept — an explicit zero reads differently from an
// absent metric.
func (s Snapshot) Summary() string {
	var b strings.Builder
	for _, f := range s.Families {
		for _, sr := range f.Series {
			name := f.Name + labelString(f.LabelNames, sr.LabelValues, "", "")
			if f.Kind == KindHistogram && sr.Histogram != nil {
				h := sr.Histogram
				mean := 0.0
				if h.Count > 0 {
					mean = h.Sum / float64(h.Count)
				}
				fmt.Fprintf(&b, "%-64s count=%d mean=%.3g p50=%.3g p95=%.3g p99=%.3g\n",
					name, h.Count, mean, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
				continue
			}
			fmt.Fprintf(&b, "%-64s %d\n", name, sr.Value)
		}
	}
	return b.String()
}

// MergeSnapshots folds snapshots from many registries into one fleet-style
// view: counter and gauge series with the same identity sum their values,
// and histograms with identical bounds sum their buckets. Use it to
// aggregate per-Doctor registries across a sweep. Mismatched kinds or
// bucket layouts under one name panic — that is a naming bug, not data.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	type skey struct {
		fam string
		key string
	}
	famOrder := []string{}
	fams := map[string]*Family{}
	idx := map[skey]int{}
	for _, sn := range snaps {
		for _, f := range sn.Families {
			mf, ok := fams[f.Name]
			if !ok {
				nf := Family{Name: f.Name, Help: f.Help, Kind: f.Kind,
					LabelNames: append([]string(nil), f.LabelNames...)}
				fams[f.Name] = &nf
				famOrder = append(famOrder, f.Name)
				mf = fams[f.Name]
			} else if mf.Kind != f.Kind {
				panic(fmt.Sprintf("obs: merge of %q with conflicting kinds", f.Name))
			}
			for _, sr := range f.Series {
				k := skey{f.Name, seriesKey(sr.LabelValues)}
				i, ok := idx[k]
				if !ok {
					idx[k] = len(mf.Series)
					cp := Series{LabelValues: append([]string(nil), sr.LabelValues...), Value: sr.Value}
					if sr.Histogram != nil {
						h := *sr.Histogram
						h.Bounds = append([]float64(nil), sr.Histogram.Bounds...)
						h.Counts = append([]uint64(nil), sr.Histogram.Counts...)
						cp.Histogram = &h
					}
					mf.Series = append(mf.Series, cp)
					continue
				}
				dst := &mf.Series[i]
				if sr.Histogram != nil {
					if dst.Histogram == nil || !equalBounds(dst.Histogram.Bounds, sr.Histogram.Bounds) {
						panic(fmt.Sprintf("obs: merge of %q with conflicting buckets", f.Name))
					}
					for j := range sr.Histogram.Counts {
						dst.Histogram.Counts[j] += sr.Histogram.Counts[j]
					}
					dst.Histogram.Count += sr.Histogram.Count
					dst.Histogram.Sum += sr.Histogram.Sum
					continue
				}
				dst.Value += sr.Value
			}
		}
	}
	sort.Strings(famOrder)
	out := Snapshot{Families: make([]Family, 0, len(famOrder))}
	for _, name := range famOrder {
		f := fams[name]
		sort.Slice(f.Series, func(i, j int) bool {
			return seriesKey(f.Series[i].LabelValues) < seriesKey(f.Series[j].LabelValues)
		})
		out.Families = append(out.Families, *f)
	}
	return out
}
