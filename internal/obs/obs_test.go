package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeBasics covers the scalar metric contracts.
func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_events_total", "events")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative Counter.Add did not panic")
			}
		}()
		c.Add(-1)
	}()

	g := r.Gauge("t_depth", "depth")
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}

	// Registration is idempotent: same name returns the same metric.
	if r.Counter("t_events_total", "events") != c {
		t.Error("re-registration returned a different counter")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind conflict did not panic")
			}
		}()
		r.Gauge("t_events_total", "events")
	}()
}

// TestHistogramBucketBoundaries pins the upper-inclusive le convention at
// the exact edges: a value equal to a bound lands in that bound's bucket,
// the next representable value above it in the next one, and values beyond
// every bound in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_lat_ms", "latency", []float64{1, 10, 100})

	h.Observe(0)                        // <= 1
	h.Observe(1)                        // == first bound → bucket 0
	h.Observe(math.Nextafter(1, 2))     // just above → bucket 1
	h.Observe(10)                       // == second bound → bucket 1
	h.Observe(100)                      // == last bound → bucket 2
	h.Observe(math.Nextafter(100, 200)) // just above last bound → +Inf
	h.Observe(math.MaxFloat64)          // deep overflow → +Inf
	h.Observe(-5)                       // below every bound → bucket 0

	hs := h.snapshot()
	want := []uint64{3, 2, 1, 2}
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
	if hs.Count != 8 {
		t.Errorf("count = %d, want 8", hs.Count)
	}
	if got := h.Count(); got != 8 {
		t.Errorf("Count() = %d, want 8", got)
	}
	wantSum := 0.0 + 1 + math.Nextafter(1, 2) + 10 + 100 + math.Nextafter(100, 200) + math.MaxFloat64 - 5
	if hs.Sum != wantSum {
		t.Errorf("sum = %g, want %g", hs.Sum, wantSum)
	}
}

// TestHistogramQuantile checks the interpolation math on a known shape.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_q_ms", "q", []float64{10, 20, 40})
	// 10 observations uniformly in (0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	hs := h.snapshot()
	if p50 := hs.Quantile(0.5); p50 != 10 {
		t.Errorf("p50 = %g, want 10", p50)
	}
	if p75 := hs.Quantile(0.75); p75 != 15 {
		t.Errorf("p75 = %g, want 15", p75)
	}
	if p100 := hs.Quantile(1); p100 != 20 {
		t.Errorf("p100 = %g, want 20", p100)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %g, want 0", q)
	}
	// Overflow observations clamp to the largest finite bound.
	h.Observe(1e9)
	if q := h.snapshot().Quantile(0.999); q != 40 {
		t.Errorf("overflow quantile = %g, want clamp to 40", q)
	}
}

// TestInvalidRegistrations pins the panics that catch naming bugs early.
func TestInvalidRegistrations(t *testing.T) {
	r := NewRegistry()
	for name, fn := range map[string]func(){
		"bad metric name":  func() { r.Counter("9bad", "") },
		"empty name":       func() { r.Counter("", "") },
		"bad label":        func() { r.CounterVec("t_ok_total", "", "bad-label") },
		"empty buckets":    func() { r.Histogram("t_h", "", nil) },
		"unsorted buckets": func() { r.Histogram("t_h2", "", []float64{5, 1}) },
		"nan bucket":       func() { r.Histogram("t_h3", "", []float64{math.NaN()}) },
		"label arity":      func() { r.CounterVec("t_vec_total", "", "a", "b").With("only-one") },
		"bucket conflict":  func() { r.Histogram("t_h4", "", []float64{1}); r.Histogram("t_h4", "", []float64{2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestDeterministicExposition: two registries populated in different orders
// render byte-identical text, and repeated snapshots of one registry are
// stable.
func TestDeterministicExposition(t *testing.T) {
	build := func(reverse bool) *Registry {
		r := NewRegistry()
		names := []string{"t_a_total", "t_b_total", "t_c_total"}
		if reverse {
			for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
				names[i], names[j] = names[j], names[i]
			}
		}
		values := map[string]int64{"t_a_total": 1, "t_b_total": 2, "t_c_total": 3}
		for _, n := range names {
			r.Counter(n, "help "+n).Add(values[n])
		}
		vec := r.GaugeVec("t_shard_entries", "per shard", "shard")
		order := []string{"2", "0", "1"}
		if reverse {
			order = []string{"1", "0", "2"}
		}
		for _, s := range order {
			vec.With(s).Set(int64(s[0]-'0') + 7)
		}
		h := r.Histogram("t_lat_ms", "latency", []float64{1, 5, 25})
		for _, v := range []float64{0.5, 3, 3, 60} {
			h.Observe(v)
		}
		return r
	}
	a := build(false)
	b := build(true)
	var sa, sb strings.Builder
	if err := a.WritePrometheus(&sa); err != nil {
		t.Fatal(err)
	}
	if err := b.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sa.String() != sb.String() {
		t.Errorf("exposition depends on registration order:\n--- a ---\n%s\n--- b ---\n%s", sa.String(), sb.String())
	}
	var again strings.Builder
	a.WritePrometheus(&again)
	if sa.String() != again.String() {
		t.Error("repeated exposition of one registry not byte-identical")
	}

	// Shape checks: TYPE lines, labeled series, cumulative buckets.
	text := sa.String()
	for _, want := range []string{
		"# TYPE t_a_total counter\nt_a_total 1\n",
		"# TYPE t_shard_entries gauge\n",
		`t_shard_entries{shard="0"} 7`,
		`t_lat_ms_bucket{le="1"} 1`,
		`t_lat_ms_bucket{le="5"} 3`,
		`t_lat_ms_bucket{le="25"} 3`,
		`t_lat_ms_bucket{le="+Inf"} 4`,
		"t_lat_ms_sum 66.5",
		"t_lat_ms_count 4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestCallbackMetrics: CounterFunc/GaugeFunc project live variables into
// snapshots without double bookkeeping.
func TestCallbackMetrics(t *testing.T) {
	r := NewRegistry()
	n := int64(0)
	r.CounterFunc("t_live_total", "live", func() int64 { return n })
	depth := 3
	r.GaugeFunc("t_live_depth", "depth", func() int64 { return int64(depth) })
	n, depth = 42, 9
	s := r.Snapshot()
	if got := s.Value("t_live_total"); got != 42 {
		t.Errorf("counterfunc = %d, want 42", got)
	}
	if got := s.Value("t_live_depth"); got != 9 {
		t.Errorf("gaugefunc = %d, want 9", got)
	}
	// Re-registration replaces the callback (re-attach semantics).
	r.CounterFunc("t_live_total", "live", func() int64 { return 7 })
	if got := r.Snapshot().Value("t_live_total"); got != 7 {
		t.Errorf("replaced counterfunc = %d, want 7", got)
	}
}

// TestConcurrentHammering drives every metric kind from many goroutines
// while snapshots and expositions run — under -race this is the lock-free
// safety proof; afterwards the totals must be exact.
func TestConcurrentHammering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_hammer_total", "hammer")
	g := r.Gauge("t_hammer_depth", "depth")
	h := r.Histogram("t_hammer_ms", "ms", ExpBuckets(1, 2, 10))
	vec := r.CounterVec("t_hammer_kind_total", "by kind", "kind")
	kinds := []*Counter{vec.With("a"), vec.With("b"), vec.With("c")}

	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 700))
				kinds[(w+i)%len(kinds)].Inc()
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 3; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s := r.Snapshot()
					hs := s.Histogram("t_hammer_ms")
					var sum uint64
					for _, b := range hs.Counts {
						sum += b
					}
					if sum != hs.Count {
						t.Error("histogram snapshot internally inconsistent")
						return
					}
					var b strings.Builder
					s.WriteTo(&b)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	const total = workers * perWorker
	if c.Value() != total {
		t.Errorf("counter = %d, want %d", c.Value(), total)
	}
	if g.Value() != total {
		t.Errorf("gauge = %d, want %d", g.Value(), total)
	}
	if h.Count() != total {
		t.Errorf("histogram count = %d, want %d", h.Count(), total)
	}
	var kindSum int64
	for _, k := range kinds {
		kindSum += k.Value()
	}
	if kindSum != total {
		t.Errorf("vec total = %d, want %d", kindSum, total)
	}
}

// TestMergeSnapshots: merged counters sum, histograms add bucket-wise, and
// the result stays deterministic.
func TestMergeSnapshots(t *testing.T) {
	mk := func(n int64, obsv ...float64) Snapshot {
		r := NewRegistry()
		r.Counter("t_m_total", "m").Add(n)
		h := r.Histogram("t_m_ms", "ms", []float64{1, 10})
		for _, v := range obsv {
			h.Observe(v)
		}
		r.GaugeVec("t_m_by", "by", "k").With("x").Set(n)
		return r.Snapshot()
	}
	m := MergeSnapshots(mk(3, 0.5, 20), mk(4, 5))
	if got := m.Value("t_m_total"); got != 7 {
		t.Errorf("merged counter = %d, want 7", got)
	}
	hs := m.Histogram("t_m_ms")
	if hs.Count != 3 || hs.Counts[0] != 1 || hs.Counts[1] != 1 || hs.Counts[2] != 1 {
		t.Errorf("merged histogram = %+v", hs)
	}
	if hs.Sum != 25.5 {
		t.Errorf("merged sum = %g, want 25.5", hs.Sum)
	}
	fam := m.Family("t_m_by")
	if fam == nil || len(fam.Series) != 1 || fam.Series[0].Value != 7 {
		t.Errorf("merged labeled gauge = %+v", fam)
	}
}

// TestHotPathZeroAlloc is the acceptance criterion: warm Inc/Set/Observe on
// cached handles never touch the heap.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_alloc_total", "alloc")
	g := r.Gauge("t_alloc_depth", "alloc")
	h := r.Histogram("t_alloc_ms", "alloc", ExpBuckets(1, 2, 14))
	lc := r.CounterVec("t_alloc_kind_total", "alloc", "kind").With("warm")
	if allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(3)
		g.Set(9)
		g.Add(-2)
		h.Observe(17)
		h.Observe(123456)
		lc.Inc()
	}); allocs != 0 {
		t.Fatalf("hot path allocates %.1f objects/op, want 0", allocs)
	}
}
