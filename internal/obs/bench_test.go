package obs

import (
	"testing"
)

// BenchmarkObsCounterInc measures the counter hot path; CI fails the bench
// job if it allocates.
func BenchmarkObsCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_events_total", "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkObsCounterIncParallel is the contended variant: many goroutines
// on one counter (the fleet accept path under load).
func BenchmarkObsCounterIncParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_events_total", "bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkObsHistogramObserve measures the histogram hot path — binary
// search plus two atomic updates; CI fails the bench job if it allocates.
func BenchmarkObsHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_latency_ms", "bench", ExpBuckets(1, 2, 14))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 1023))
	}
}

// BenchmarkObsSnapshot sizes the read path on a registry shaped like a
// Doctor's (a few dozen families).
func BenchmarkObsSnapshot(b *testing.B) {
	r := NewRegistry()
	for _, n := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		r.Counter("bench_"+n+"_total", "bench").Add(int64(len(n)))
	}
	h := r.Histogram("bench_latency_ms", "bench", ExpBuckets(1, 2, 14))
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}
