// Package obs is the repo-wide observability layer: lock-free Counter,
// Gauge, and fixed-bucket Histogram primitives over sync/atomic, organized
// into a Registry of named (optionally labeled) families with deterministic
// sorted snapshots and Prometheus text-format exposition.
//
// Every subsystem that used to keep ad-hoc counters — core.Health and
// core.Telemetry, fleet.Metrics, fault injection stats, the experiment
// worker pool — registers here instead, so there is exactly one way to ask
// "how is this process doing" (Registry.Snapshot) and one wire format to
// scrape it (Registry.WritePrometheus).
//
// Hot-path contract: Counter.Inc/Add, Gauge.Set/Add, and Histogram.Observe
// on an already-obtained handle are lock-free, wait-free apart from the
// histogram sum's CAS loop, and perform zero heap allocations. Handles are
// obtained once at setup time (Registry.Counter, Vec.With, ...), which may
// allocate and take the registry lock; callers cache them.
//
// Snapshots are deterministic: families sort by name, series by label
// values, so two snapshots of registries holding the same values render
// byte-identically — the property the exposition tests pin down.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing metric (events since process
// start). The zero value is usable but unregistered; obtain registered
// counters from a Registry.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must be non-negative (counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: Counter.Add with negative delta")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways (queue depth,
// capacity, temperature).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative deltas allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicF64 is a float64 accumulated with a CAS loop over its bit pattern;
// it backs the histogram sum without a lock or an allocation.
type atomicF64 struct {
	bits atomic.Uint64
}

func (a *atomicF64) add(v float64) {
	for {
		old := a.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (a *atomicF64) load() float64 { return math.Float64frombits(a.bits.Load()) }

// Histogram is a fixed-bucket latency/size distribution. Buckets follow the
// Prometheus convention: bucket i counts observations v <= Bounds[i]
// (upper-inclusive), plus one implicit +Inf overflow bucket. Observe is
// lock-free and allocation-free.
type Histogram struct {
	bounds []float64       // strictly increasing upper bounds, excluding +Inf
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomicF64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("obs: histogram bounds must be finite")
		}
		if i > 0 && b <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// SearchFloat64s returns the first index with bounds[i] >= v, which is
	// exactly the first upper-inclusive bucket that admits v; values above
	// every bound land on the +Inf bucket at len(bounds).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.add(v)
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// snapshot copies the bucket counts once. Count is derived from the copied
// buckets (not read separately), so a snapshot is always internally
// consistent even while observations land concurrently.
func (h *Histogram) snapshot() HistogramSnapshot {
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return HistogramSnapshot{
		Bounds: h.bounds,
		Counts: counts,
		Count:  total,
		Sum:    h.sum.load(),
	}
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if n <= 0 || width <= 0 {
		panic("obs: LinearBuckets needs n > 0 and width > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n bounds start, start*factor, start*factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic("obs: ExpBuckets needs n > 0, start > 0, factor > 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
