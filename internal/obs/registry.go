package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind discriminates metric families.
type Kind string

// Family kinds, matching the Prometheus TYPE vocabulary.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// series is one (label values → metric) instance inside a family; exactly
// one of c/g/h/fn is set, matching the family kind.
type series struct {
	labelValues []string
	c           *Counter
	g           *Gauge
	h           *Histogram
	fn          func() int64
}

// family is one named metric with a fixed kind, help string, and label
// schema. Unlabeled metrics are a family with one series under the empty
// key.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histogram families only

	mu     sync.RWMutex
	series map[string]*series
}

// Registry is a set of metric families. All methods are safe for concurrent
// use; registration takes locks, but the handles it returns operate
// lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// validName reports whether s is a legal metric or label name:
// [a-zA-Z_:][a-zA-Z0-9_:]* for metrics (colons allowed), with digits
// forbidden in first position.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// lookup fetches or creates a family, enforcing that re-registration under
// the same name agrees on kind and label schema (help may repeat freely but
// must not conflict). Registration is idempotent so two subsystems sharing
// a registry can both declare the family they feed.
func (r *Registry) lookup(name, help string, kind Kind, labels []string, bounds []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) || strings.Contains(l, ":") {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name: name, help: help, kind: kind,
			labels: append([]string(nil), labels...),
			series: map[string]*series{},
		}
		if kind == KindHistogram {
			f.bounds = append([]float64(nil), bounds...)
		}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, kind, f.kind))
	}
	if len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: metric %q re-registered with different labels", name))
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic(fmt.Sprintf("obs: metric %q re-registered with different labels", name))
		}
	}
	if kind == KindHistogram && !equalBounds(f.bounds, bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different buckets", name))
	}
	if help != "" && f.help != "" && help != f.help {
		panic(fmt.Sprintf("obs: metric %q re-registered with conflicting help", name))
	}
	if f.help == "" {
		f.help = help
	}
	return f
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seriesKey joins label values with an unprintable separator; label values
// themselves are free-form UTF-8.
func seriesKey(values []string) string { return strings.Join(values, "\x00") }

// get fetches or creates the series for values, building the metric with
// mk. The double-checked read path keeps repeated With() lookups cheap.
func (f *family) get(values []string, mk func(s *series)) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.series[key]; ok {
		return s
	}
	s = &series{labelValues: append([]string(nil), values...)}
	mk(s)
	f.series[key] = s
	return s
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, KindCounter, nil, nil)
	return f.get(nil, func(s *series) { s.c = &Counter{} }).c
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, KindGauge, nil, nil)
	return f.get(nil, func(s *series) { s.g = &Gauge{} }).g
}

// Histogram registers (or fetches) an unlabeled histogram with the given
// upper bucket bounds (strictly increasing; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.lookup(name, help, KindHistogram, nil, bounds)
	return f.get(nil, func(s *series) { s.h = newHistogram(f.bounds) }).h
}

// CounterFunc registers a callback counter: fn is evaluated at snapshot and
// exposition time. Use it to project an existing monotonic variable (a
// plain struct field owned by single-threaded code) into the registry
// without double bookkeeping; fn must be safe to call from the scraping
// goroutine. Re-registering an existing name replaces the callback.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	f := r.lookup(name, help, KindCounter, nil, nil)
	s := f.get(nil, func(s *series) {})
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// GaugeFunc registers a callback gauge (live queue depths and the like);
// the same caveats as CounterFunc apply.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	f := r.lookup(name, help, KindGauge, nil, nil)
	s := f.get(nil, func(s *series) {})
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if len(labelNames) == 0 {
		panic("obs: CounterVec needs at least one label")
	}
	return &CounterVec{r.lookup(name, help, KindCounter, labelNames, nil)}
}

// With returns the counter for the given label values, creating it on first
// use. Callers cache the handle; With itself may allocate.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.get(labelValues, func(s *series) { s.c = &Counter{} }).c
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	if len(labelNames) == 0 {
		panic("obs: GaugeVec needs at least one label")
	}
	return &GaugeVec{r.lookup(name, help, KindGauge, labelNames, nil)}
}

// With returns the gauge for the given label values, creating it on first
// use.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.get(labelValues, func(s *series) { s.g = &Gauge{} }).g
}

// HistogramVec is a histogram family keyed by label values; every series
// shares the family's bucket bounds.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	if len(labelNames) == 0 {
		panic("obs: HistogramVec needs at least one label")
	}
	return &HistogramVec{r.lookup(name, help, KindHistogram, labelNames, bounds)}
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.get(labelValues, func(s *series) { s.h = newHistogram(v.f.bounds) }).h
}

// sortedFamilies returns the families ordered by name.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
