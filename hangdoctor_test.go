package hangdoctor

import (
	"strings"
	"testing"
)

// TestPublicAPIQuickstart exercises the facade end to end: build a custom
// app through the public API, monitor it, and confirm the diagnosis.
func TestPublicAPIQuickstart(t *testing.T) {
	reg := NewRegistry()
	slowClass := reg.DefineClass("com.example.cache.DiskCache", false, "", false)
	slowAPI := reg.DefineAPI(slowClass, "warmUp", "", 42, 0)
	uiAPI, _ := reg.API("android.widget.TextView.setText")

	bug := &Bug{ID: "Demo/1", IssueID: "1", Description: "disk cache warm-up on main thread"}
	demo := &App{
		Name:     "Demo",
		Registry: reg,
		Bugs:     []*Bug{bug},
		Actions: []*Action{
			{
				Name: "Open Screen",
				Events: []*InputEvent{{Name: "evt0", Ops: []*Op{
					{Name: "warmUp", API: slowAPI, Heavy: IOHeavy(50*Millisecond, 10, 22*Millisecond), Manifest: 0.7, Bug: bug},
				}}},
			},
			{
				Name: "Scroll List",
				Events: []*InputEvent{{Name: "evt0", Ops: []*Op{
					{Name: "setText", API: uiAPI, Heavy: UIWork(120*Millisecond, 12)},
				}}},
			},
		},
	}

	sess, err := NewSession(demo, LGV10(), 7)
	if err != nil {
		t.Fatal(err)
	}
	doctor := Monitor(sess, Config{})
	for i := 0; i < 40; i++ {
		sess.Perform(demo.Actions[i%2])
		sess.Idle(Second)
	}

	var found *Detection
	for _, det := range doctor.Detections() {
		if det.RootCause == "com.example.cache.DiskCache.warmUp" {
			found = det
		}
	}
	if found == nil {
		t.Fatalf("custom bug not diagnosed; detections: %v", doctor.Detections())
	}
	if doctor.State("Demo/Scroll List") == HangBug {
		t.Fatal("UI action misdiagnosed")
	}
	if !reg.IsKnownBlocking("com.example.cache.DiskCache.warmUp") {
		t.Fatal("feedback loop did not record the new blocking API")
	}
	if !strings.Contains(doctor.Report().Render(), "warmUp") {
		t.Fatal("report missing the diagnosed entry")
	}
}

func TestPublicCorpusRoundTrip(t *testing.T) {
	c := LoadCorpus()
	a := c.MustApp("K9-Mail")
	sess, err := NewSession(a, Nexus5(), 3)
	if err != nil {
		t.Fatal(err)
	}
	execs := RunTrace(sess, Trace(a, 3, 20), Second)
	if len(execs) != 20 {
		t.Fatalf("execs = %d", len(execs))
	}
	hangs := 0
	for _, e := range execs {
		if e.ResponseTime() > PerceivableDelay {
			hangs++
		}
	}
	if hangs == 0 {
		t.Fatal("no soft hangs in a K9 trace")
	}
}

func TestDefaultConditionsMatchPaper(t *testing.T) {
	conds := DefaultConditions()
	if len(conds) != 3 {
		t.Fatalf("len = %d", len(conds))
	}
	if conds[0].Threshold != 0 {
		t.Errorf("ctx threshold = %d, want 0", conds[0].Threshold)
	}
	if conds[1].Threshold != 170_000_000 {
		t.Errorf("task-clock threshold = %d, want 1.7e8", conds[1].Threshold)
	}
	if conds[2].Threshold != 500 {
		t.Errorf("page-fault threshold = %d, want 500", conds[2].Threshold)
	}
}
