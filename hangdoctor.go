// Package hangdoctor is a faithful Go reproduction of "Hang Doctor: Runtime
// Detection and Diagnosis of Soft Hangs for Smartphone Apps" (Brocanelli &
// Wang, EuroSys 2018), built on a deterministic simulation of the Android
// runtime the paper instruments.
//
// The package is the public facade over the internal subsystems:
//
//   - a discrete-event multicore scheduler, Android-style looper, render
//     thread, and performance-event counter model (the substrate);
//   - a 114-app corpus reproducing the paper's evaluation universe,
//     including the 16 Table-5 apps with their 34 soft hang bugs;
//   - Hang Doctor itself — the two-phase S-Checker/Diagnoser detector with
//     its per-action state machine, Hang Bug Report, and known-blocking-API
//     feedback loop — plus the paper's baselines (Timeout, Utilization, and
//     an offline PerfChecker-style scanner);
//   - experiment harnesses regenerating every table and figure of the
//     paper's evaluation (see cmd/experiments and the repository
//     benchmarks).
//
// # Quick start
//
//	c := hangdoctor.LoadCorpus()
//	app := c.MustApp("K9-Mail")
//	sess, _ := hangdoctor.NewSession(app, hangdoctor.LGV10(), 42)
//	doctor := hangdoctor.Monitor(sess, hangdoctor.Config{})
//	for _, act := range hangdoctor.Trace(app, 42, 100) {
//		sess.Perform(act)
//		sess.Idle(hangdoctor.Second)
//	}
//	fmt.Print(doctor.Report().Render())
//
// Everything is deterministic: the same seed reproduces the same trace,
// hangs, diagnoses, and report, bit for bit.
package hangdoctor

import (
	"io"

	"hangdoctor/internal/android/api"
	"hangdoctor/internal/android/app"
	"hangdoctor/internal/core"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/detect"
	"hangdoctor/internal/fault"
	"hangdoctor/internal/obs"
	"hangdoctor/internal/simclock"
)

// Core library types.
type (
	// Doctor is the Hang Doctor runtime detector (the paper's contribution).
	Doctor = core.Doctor
	// Config parameterizes a Doctor; the zero value is the paper's
	// configuration (100 ms delay, the three S-Checker conditions, 20 ms
	// trace sampling, occurrence threshold 0.5, reset every 20 executions).
	Config = core.Config
	// Condition is one S-Checker symptom threshold.
	Condition = core.Condition
	// ActionState is the per-action state of Figure 3.
	ActionState = core.ActionState
	// Detection is one confirmed soft-hang-bug diagnosis.
	Detection = core.Detection
	// Diagnosis is a Trace Analyzer verdict.
	Diagnosis = core.Diagnosis
	// Report is the developer-facing Hang Bug Report.
	Report = core.Report
	// ReportEntry is one Hang Bug Report row.
	ReportEntry = core.ReportEntry
	// LabeledReading is one sample of the filter-adaptation data set.
	LabeledReading = core.LabeledReading
	// HeavyReading is a wide-event adaptation sample for server-side
	// re-selection.
	HeavyReading = core.HeavyReading
	// AdaptResult is an adaptation pass outcome.
	AdaptResult = core.AdaptResult
	// Telemetry is the per-action responsiveness dashboard.
	Telemetry = core.Telemetry
	// ActionStats is one action's responsiveness summary.
	ActionStats = core.ActionStats
	// Health is the Doctor's degraded-operation summary: what the
	// measurement plane lost and how the Doctor compensated.
	Health = core.Health
	// FaultRates configures the substrate fault-injection layer, one
	// independent probability per modeled measurement-plane failure.
	FaultRates = fault.Rates
	// FaultInjector makes seeded deterministic fault decisions; install one
	// on a Session with SetFaults to exercise degraded operation.
	FaultInjector = fault.Injector
	// FaultStats counts the faults an injector actually delivered.
	FaultStats = fault.Stats
	// Metrics is a deterministic point-in-time snapshot of a Doctor's obs
	// registry: health and accounting counters, perf-plane counters,
	// injected-fault ground truth, and the stage-latency histograms.
	// Obtain one with (*Doctor).Metrics(); merge many with MergeMetrics.
	Metrics = obs.Snapshot
	// MetricsFamily is one named metric within a Metrics snapshot.
	MetricsFamily = obs.Family
	// MetricsHistogram is a point-in-time copy of one histogram, with
	// Quantile for p50/p95/p99-style queries.
	MetricsHistogram = obs.HistogramSnapshot
)

// MergeMetrics folds metrics snapshots from many Doctors into one
// fleet-style view: counters and gauges sum, histograms add bucket-wise.
func MergeMetrics(snaps ...Metrics) Metrics { return obs.MergeSnapshots(snaps...) }

// NewFaultInjector builds a fault injector whose decisions are a pure
// function of seed and rates. Install it with (*Session).SetFaults before
// running a trace; a nil injector (the default) is a perfect plane.
func NewFaultInjector(seed uint64, rates FaultRates) *FaultInjector {
	return fault.New(seed, rates)
}

// LightAdapt nudges the current thresholds on collected labeled readings
// (the on-device adaptation pass); it reports false when heavy adaptation
// is needed.
func LightAdapt(conds []Condition, data []LabeledReading) (AdaptResult, bool) {
	return core.LightAdapt(conds, data)
}

// Simulated-app model types.
type (
	// App is a simulated application.
	App = app.App
	// Action is a user action (the unit Hang Doctor tracks state for).
	Action = app.Action
	// InputEvent is one main-thread message of an action.
	InputEvent = app.InputEvent
	// Op is one operation an input event executes.
	Op = app.Op
	// Bug is ground-truth metadata of a seeded soft hang bug.
	Bug = app.Bug
	// CostModel describes an operation's resource behaviour.
	CostModel = app.CostModel
	// Device models the phone the app runs on.
	Device = app.Device
	// Session executes an app on a simulated device.
	Session = app.Session
	// ActionExec records one action execution.
	ActionExec = app.ActionExec
	// APIRegistry is the shared class/API universe with the known-blocking
	// database.
	APIRegistry = api.Registry
	// Corpus is the 114-app evaluation universe.
	Corpus = corpus.Corpus
)

// Time types (virtual nanoseconds).
type (
	// Time is an absolute simulated timestamp.
	Time = simclock.Time
	// Duration is a span of simulated time.
	Duration = simclock.Duration
)

// Duration units.
const (
	Nanosecond  = simclock.Nanosecond
	Microsecond = simclock.Microsecond
	Millisecond = simclock.Millisecond
	Second      = simclock.Second
	Minute      = simclock.Minute
	Hour        = simclock.Hour
	Day         = simclock.Day
)

// PerceivableDelay is the 100 ms human-perceivable delay defining a soft
// hang.
const PerceivableDelay = detect.PerceivableDelay

// Action states (Figure 3).
const (
	Uncategorized = core.Uncategorized
	Normal        = core.Normal
	Suspicious    = core.Suspicious
	HangBug       = core.HangBug
)

// New builds a Hang Doctor with the given configuration (zero value = the
// paper's defaults).
func New(cfg Config) *Doctor { return core.New(cfg) }

// Monitor attaches a new Doctor to a session and returns it; every action
// performed on the session from now on is analyzed.
func Monitor(s *Session, cfg Config) *Doctor {
	d := core.New(cfg)
	d.Attach(s)
	s.AddListener(d)
	return d
}

// DefaultConditions returns the paper's three S-Checker conditions.
func DefaultConditions() []Condition { return core.DefaultConditions() }

// NewSession builds the simulated device stack for an app. The seed fixes
// every random choice (costs, manifestation, interference, measurement
// noise).
func NewSession(a *App, dev Device, seed uint64) (*Session, error) {
	return app.NewSession(a, dev, seed)
}

// Devices the paper evaluates on.
func LGV10() Device    { return app.LGV10() }
func Nexus5() Device   { return app.Nexus5() }
func GalaxyS3() Device { return app.GalaxyS3() }

// NewRegistry returns a fresh API registry preloaded with the platform
// classes and the documented blocking APIs.
func NewRegistry() *APIRegistry { return api.NewRegistry() }

// LoadCorpus builds the 114-app evaluation corpus.
func LoadCorpus() *Corpus { return corpus.Build() }

// Trace generates a deterministic weighted user trace of n actions.
func Trace(a *App, seed uint64, n int) []*Action { return corpus.Trace(a, seed, n) }

// RunTrace executes a trace on a session with think-time gaps.
func RunTrace(s *Session, trace []*Action, think Duration) []*ActionExec {
	return corpus.RunTrace(s, trace, think)
}

// Cost-model archetypes for building custom apps.
func UIWork(mainCPU Duration, frames int) CostModel { return app.UIWork(mainCPU, frames) }
func IOHeavy(cpu Duration, blocks int, blockEach Duration) CostModel {
	return app.IOHeavy(cpu, blocks, blockEach)
}
func CPULoop(cpu Duration) CostModel { return app.CPULoop(cpu) }
func MemHeavy(cpu Duration, blocks int, blockEach Duration, faultsPerSec float64) CostModel {
	return app.MemHeavy(cpu, blocks, blockEach, faultsPerSec)
}
func ParseHeavy(cpu Duration) CostModel { return app.ParseHeavy(cpu) }

// NewReport returns an empty Hang Bug Report (for fleet-side merging).
func NewReport() *Report { return core.NewReport() }

// ImportReport parses a JSON document produced by (*Report).Export — the
// developer-side half of the fleet upload path.
func ImportReport(r io.Reader) (*Report, error) { return core.ImportReport(r) }
