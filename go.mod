module hangdoctor

go 1.22
