// Command fleetload drives load against the fleet ingestion layer: over
// HTTP against running fleetd nodes (JSON or the binary wire encoding,
// with consistent-hash routing across multiple nodes), in-process against
// the shard layer itself, or as a full fleet *simulation* — a million
// devices uploading on a realistic cadence through per-device dictionary
// encoders, exercising encoder/decoder eviction and the 409 resync
// protocol end to end. The in-process mode sweeps shard counts so the
// scaling claim (throughput grows with shards on a multicore host) is
// reproducible from one command.
//
// Usage:
//
//	fleetload -url http://localhost:8717 -uploads 500 -conc 16
//	fleetload -url http://node1:8717,http://node2:8717 -binary -uploads 5000
//	fleetload -inproc -sweep 1,2,4,8 -uploads 2000
//	fleetload -sim -sim-devices 1000000 -sim-uploads 2000000
package main

import (
	"bytes"
	"container/heap"
	"container/list"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"hangdoctor/internal/core"
	"hangdoctor/internal/fleet"
	"hangdoctor/internal/obs"
	"hangdoctor/internal/simrand"
)

func main() {
	url := flag.String("url", "", "fleetd base URL(s), comma-separated for ring routing; empty with -inproc/-sim")
	inproc := flag.Bool("inproc", false, "bench the shard layer in-process instead of over HTTP")
	sim := flag.Bool("sim", false, "run the in-process fleet simulation (devices on a cadence, dictionary deltas)")
	binary := flag.Bool("binary", false, "upload in the binary wire encoding with per-device dictionaries")
	sweep := flag.String("sweep", "1,2,4,8", "comma-separated shard counts for -inproc")
	uploads := flag.Int("uploads", 500, "number of device uploads to send")
	entries := flag.Int("entries", 120, "diagnosed root causes per upload")
	conc := flag.Int("conc", 16, "concurrent senders")
	seed := flag.Int64("seed", 1, "base PRNG seed for synthetic uploads")
	maxRetries := flag.Int("max-retries", 8, "give up on an upload after this many 429 retries")
	simDevices := flag.Int("sim-devices", 1_000_000, "distinct devices in the -sim fleet")
	simUploads := flag.Int("sim-uploads", 2_000_000, "total uploads the -sim fleet sends")
	simEntries := flag.Int("sim-entries", 4, "root causes per -sim upload (devices report small deltas often)")
	simShards := flag.Int("sim-shards", 8, "aggregator shards for -sim")
	simDict := flag.Int("sim-dict", 250_000, "server-side dictionary cache (devices) for -sim; smaller than the fleet forces resyncs")
	poll := flag.Duration("poll", 0, "while sending over HTTP, delta-poll the node(s) at this interval (0 = off)")
	flag.Parse()

	var stopPoll func()
	if *poll > 0 && *url != "" && !*inproc && !*sim {
		stopPoll = startPoller(splitNodes(*url), *poll)
	}
	switch {
	case *sim:
		runSim(*simDevices, *simUploads, *simEntries, *simShards, *simDict, *seed)
	case *inproc:
		runInproc(*sweep, *uploads, *entries, *conc, *seed)
	case *url != "" && *binary:
		runHTTPBinary(*url, *uploads, *entries, *conc, *seed, *maxRetries)
	case *url != "":
		runHTTP(*url, *uploads, *entries, *conc, *seed, *maxRetries)
	default:
		fmt.Fprintln(os.Stderr, "usage: fleetload -url <fleetd>[,<fleetd>...] [-binary] | fleetload -inproc [-sweep 1,2,4,8] | fleetload -sim")
		os.Exit(2)
	}
	if stopPoll != nil {
		stopPoll()
	}
}

// startPoller exercises the incremental read path while the load runs: a
// Regional delta-polls the target nodes at the given interval (echoing
// version vectors, applying deltas) and prints what it saw on stop. This
// is the read half of the load story — folds race ingest instead of
// running against a quiet fleet.
func startPoller(nodes []string, interval time.Duration) (stop func()) {
	reg := fleet.NewRegional(nodes, &http.Client{Timeout: 10 * time.Second})
	reg.NodeTimeout = 5 * time.Second
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		var rounds, deltas, failed int
		var last *core.Report
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				if rounds > 0 && last != nil {
					fmt.Printf("poller: %d rounds (%d delta answers, %d node failures), final view: %d causes, %d hangs\n",
						rounds, deltas, failed, last.Len(), last.TotalHangs())
				}
				return
			case <-tick.C:
				res := reg.PollDelta(context.Background())
				rounds++
				deltas += res.Deltas
				failed += res.Failed
				last = res.Report
			}
		}
	}()
	return func() { close(done); <-finished }
}

// payloads pre-exports the synthetic uploads so generation cost never
// pollutes the ingest measurement.
func payloads(uploads, entries int, seed int64) [][]byte {
	out := make([][]byte, uploads)
	for i := range out {
		rep := fleet.SyntheticUpload(seed+int64(i), fmt.Sprintf("device-%04d", i), entries)
		var buf bytes.Buffer
		if err := rep.Export(&buf); err != nil {
			log.Fatalf("export: %v", err)
		}
		out[i] = buf.Bytes()
	}
	return out
}

// splitNodes parses a comma-separated -url list.
func splitNodes(urls string) []string {
	var nodes []string
	for _, u := range strings.Split(urls, ",") {
		if u = strings.TrimSpace(u); u != "" {
			nodes = append(nodes, strings.TrimRight(u, "/"))
		}
	}
	return nodes
}

func runHTTP(base string, uploads, entries, conc int, seed int64, maxRetries int) {
	base = splitNodes(base)[0]
	docs := payloads(uploads, entries, seed)
	// The loader's own accounting lives in an obs registry: lock-free
	// counters for the senders, a latency histogram for the per-POST round
	// trip (each attempt is one observation, throttled retries included).
	reg := obs.NewRegistry()
	accepted := reg.Counter("fleetload_uploads_accepted_total", "Uploads acknowledged with 202.")
	throttled := reg.Counter("fleetload_throttle_retries_total", "429 responses honored with a backoff retry.")
	failed := reg.Counter("fleetload_uploads_failed_total", "Uploads that errored or got a non-202, non-429 status.")
	latency := reg.Histogram("fleetload_upload_latency_ms",
		"Round-trip wall time of one upload POST.", obs.ExpBuckets(0.25, 2, 16))
	var wg sync.WaitGroup
	next := make(chan []byte)
	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		// Each sender jitters its backoff from a private derived stream, so
		// retries stay reproducible per seed without sharing a lock.
		rng := simrand.New(uint64(seed)).Derive("fleetload/retry").Derive(strconv.Itoa(w))
		go func() {
			defer wg.Done()
			for doc := range next {
				for retries := 0; ; retries++ {
					t0 := time.Now()
					resp, err := client.Post(base+"/v1/upload", "application/json", bytes.NewReader(doc))
					if err != nil {
						failed.Inc()
						break
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					latency.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
					if resp.StatusCode == http.StatusTooManyRequests {
						if retries >= maxRetries {
							// Persistent backpressure: give up rather than
							// hammer a server that keeps saying no.
							failed.Inc()
							break
						}
						// Honor the server's backpressure, jittering around the
						// advertised delay (uniform in [base/2, base*3/2)) so a
						// throttled cohort does not retry in lockstep and
						// re-create the very spike that throttled it.
						throttled.Inc()
						delay := time.Second
						if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
							delay = time.Duration(ra) * time.Second
						}
						time.Sleep(delay/2 + time.Duration(rng.Int63n(int64(delay))))
						continue
					}
					if resp.StatusCode == http.StatusAccepted {
						accepted.Inc()
					} else {
						failed.Inc()
					}
					break
				}
			}
		}()
	}
	for _, doc := range docs {
		next <- doc
	}
	close(next)
	wg.Wait()
	el := time.Since(start)
	fmt.Printf("sent %d uploads in %v: %.0f uploads/s (accepted=%d throttled-retries=%d failed=%d)\n",
		uploads, el.Round(time.Millisecond), float64(uploads)/el.Seconds(),
		accepted.Value(), throttled.Value(), failed.Value())
	h := reg.Snapshot().Histogram("fleetload_upload_latency_ms")
	fmt.Printf("upload latency: p50=%.2fms p95=%.2fms p99=%.2fms (%d round trips)\n",
		h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Count)
	if failed.Value() > 0 {
		os.Exit(1)
	}
}

// runHTTPBinary uploads in the binary wire encoding: devices are sticky to
// one worker (dictionary deltas are ordered per device) and to one node via
// the consistent-hash ring, each device streams several uploads through its
// own encoder, and a 409 answer triggers the reset-and-resend resync.
func runHTTPBinary(urls string, uploads, entries, conc int, seed int64, maxRetries int) {
	nodes := splitNodes(urls)
	ring := fleet.NewRing(nodes, 0)
	const perDev = 8 // uploads per device: deltas amortize the dictionary
	reg := obs.NewRegistry()
	accepted := reg.Counter("fleetload_uploads_accepted_total", "Uploads acknowledged with 202.")
	throttled := reg.Counter("fleetload_throttle_retries_total", "429 responses honored with a backoff retry.")
	resyncs := reg.Counter("fleetload_dict_resyncs_total", "409 dictionary resets honored with a full-dictionary resend.")
	failed := reg.Counter("fleetload_uploads_failed_total", "Uploads that errored or got a non-202 terminal status.")
	sent := reg.Counter("fleetload_bytes_sent_total", "Request body bytes sent (all attempts).")
	latency := reg.Histogram("fleetload_upload_latency_ms",
		"Round-trip wall time of one upload POST.", obs.ExpBuckets(0.25, 2, 16))
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		rng := simrand.New(uint64(seed)).Derive("fleetload/retry").Derive(strconv.Itoa(w))
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			post := func(node string, doc []byte) (int, error) {
				t0 := time.Now()
				resp, err := client.Post(node+"/v1/upload", core.BinaryContentType, bytes.NewReader(doc))
				if err != nil {
					return 0, err
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				sent.Add(int64(len(doc)))
				latency.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
				return resp.StatusCode, nil
			}
			for d := w; d*perDev < uploads; d += conc {
				device := fmt.Sprintf("device-%06d", d)
				node := ring.Node(device)
				enc := core.NewBinaryEncoder(device)
				lo, hi := d*perDev, (d+1)*perDev
				if hi > uploads {
					hi = uploads
				}
				for i := lo; i < hi; i++ {
					rep := fleet.SyntheticUpload(seed+int64(i), device, entries)
					doc := append([]byte(nil), enc.Encode(rep)...)
					ok := false
					for retries := 0; retries <= maxRetries; retries++ {
						code, err := post(node, doc)
						if err != nil {
							break
						}
						if code == http.StatusConflict {
							// The server lost this device's dictionary
							// (restart or eviction): resend self-contained.
							resyncs.Inc()
							enc.Reset()
							doc = append(doc[:0], enc.Encode(rep)...)
							continue
						}
						if code == http.StatusTooManyRequests {
							throttled.Inc()
							time.Sleep(time.Second/2 + time.Duration(rng.Int63n(int64(time.Second))))
							continue
						}
						ok = code == http.StatusAccepted
						break
					}
					if ok {
						accepted.Inc()
					} else {
						failed.Inc()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	el := time.Since(start)
	fmt.Printf("sent %d binary uploads across %d node(s) in %v: %.0f uploads/s (accepted=%d resyncs=%d throttled-retries=%d failed=%d, %.1f MiB sent)\n",
		uploads, len(nodes), el.Round(time.Millisecond), float64(uploads)/el.Seconds(),
		accepted.Value(), resyncs.Value(), throttled.Value(), failed.Value(),
		float64(sent.Value())/(1<<20))
	h := reg.Snapshot().Histogram("fleetload_upload_latency_ms")
	fmt.Printf("upload latency: p50=%.2fms p95=%.2fms p99=%.2fms (%d round trips)\n",
		h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Count)
	if failed.Value() > 0 {
		os.Exit(1)
	}
}

func runInproc(sweep string, uploads, entries, conc int, seed int64) {
	reps := make([]*core.Report, uploads)
	for i := range reps {
		reps[i] = fleet.SyntheticUpload(seed+int64(i), fmt.Sprintf("device-%04d", i), entries)
	}
	type row struct {
		shards int
		rate   float64
	}
	var rows []row
	for _, f := range strings.Split(sweep, ",") {
		shards, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || shards < 1 {
			log.Fatalf("bad -sweep element %q", f)
		}
		agg := fleet.NewAggregator(fleet.Config{Shards: shards, QueueDepth: 4 * uploads})
		start := time.Now()
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					// Submissions hand ownership to the aggregator; clone so
					// the pre-built upload survives for the next sweep point.
					if err := agg.SubmitWait(reps[i].Clone()); err != nil {
						log.Fatalf("submit: %v", err)
					}
				}
			}()
		}
		for i := range reps {
			next <- i
		}
		close(next)
		wg.Wait()
		agg.Close() // drain: the measurement covers every merge
		el := time.Since(start)
		rate := float64(uploads) / el.Seconds()
		rows = append(rows, row{shards, rate})
		rep := agg.Fold()
		fmt.Printf("shards=%-2d  %8.0f uploads/s  (%v total, %d causes, %d hangs)\n",
			shards, rate, el.Round(time.Millisecond), rep.Len(), rep.TotalHangs())
	}
	if len(rows) > 1 {
		base := rows[0]
		for _, r := range rows[1:] {
			fmt.Printf("speedup %d->%d shards: %.2fx\n", base.shards, r.shards, r.rate/base.rate)
		}
	}
}

// ---------------------------------------------------------------------------
// Fleet simulation

// devLRU is a bounded device→state map (client encoders on one side,
// server decoders on the other). Eviction is the point: a fleet has more
// devices than either side can hold dictionaries for, and the simulation
// measures how often the resulting resyncs actually happen at a realistic
// cadence.
type devLRU struct {
	cap     int
	l       *list.List
	m       map[int32]*list.Element
	evicted int64
}

type devItem struct {
	key int32
	val any
}

func newDevLRU(cap int) *devLRU {
	return &devLRU{cap: cap, l: list.New(), m: make(map[int32]*list.Element)}
}

// get returns the device's state, bumping it to most-recently-used.
func (c *devLRU) get(k int32) (any, bool) {
	el, ok := c.m[k]
	if !ok {
		return nil, false
	}
	c.l.MoveToFront(el)
	return el.Value.(*devItem).val, true
}

// put inserts fresh state, evicting the coldest device beyond capacity.
func (c *devLRU) put(k int32, v any) {
	c.m[k] = c.l.PushFront(&devItem{key: k, val: v})
	for len(c.m) > c.cap {
		oldest := c.l.Back()
		c.l.Remove(oldest)
		delete(c.m, oldest.Value.(*devItem).key)
		c.evicted++
	}
}

// simEvent is one device's next scheduled upload in simulated time.
type simEvent struct {
	at  int64 // simulated milliseconds
	dev int32
}

// simHeap is a min-heap of upcoming uploads ordered by simulated time
// (ties by device, keeping the schedule deterministic).
type simHeap []simEvent

func (h simHeap) Len() int { return len(h) }
func (h simHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].dev < h[j].dev
}
func (h simHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *simHeap) Push(x any)   { *h = append(*h, x.(simEvent)) }
func (h *simHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// runSim drives a simulated fleet through the whole binary ingest path
// in-process: `devices` devices upload every ~1 simulated hour (jittered
// phase and period, min-heap ordered), each through its own dictionary
// encoder; the server side decodes against a bounded per-device decoder
// cache and submits the decoded wire entries to a sharded aggregator via
// the zero-copy path. Both caches are smaller than the fleet, so encoder
// restarts (full-dictionary resends) and decoder evictions (409-style
// resyncs) occur at their natural rate.
func runSim(devices, uploads, entries, shards, dictCap int, seed int64) {
	if devices < 1 || uploads < 1 {
		log.Fatal("fleetload: -sim-devices and -sim-uploads must be positive")
	}
	fmt.Printf("simulating %d devices, %d uploads (%d entries each), %d shards, %d-device server dictionary cache\n",
		devices, uploads, entries, shards, dictCap)
	agg := fleet.NewAggregator(fleet.Config{Shards: shards, QueueDepth: 4096})
	rng := simrand.New(uint64(seed)).Derive("fleetload/sim")

	// Every device starts at a random phase within the first simulated hour.
	const hourMS = 3_600_000
	sched := make(simHeap, devices)
	for d := range sched {
		sched[d] = simEvent{at: rng.Int63n(hourMS), dev: int32(d)}
	}
	heap.Init(&sched)

	// Client encoder state lives on the devices themselves, so it outlasts
	// the server's bounded cache — but devices do restart, so bound the
	// simulation's encoder pool at 4x the server cache: evictions there
	// model device restarts (base-0 full resend), while the server evicting
	// a still-live encoder's dictionary produces the 409 resync.
	encCap := 4 * dictCap
	if encCap < 1 {
		encCap = 1
	}
	encs := newDevLRU(encCap)
	decs := newDevLRU(dictCap)

	var resyncs, binBytes, jsonSample, binSample int64
	seq := make(map[int32]int64, devices/8)
	start := time.Now()
	for u := 0; u < uploads; u++ {
		ev := sched[0]
		seq[ev.dev]++
		device := fmt.Sprintf("device-%07d", ev.dev)
		rep := fleet.SyntheticUpload(seed+int64(ev.dev)*7919+seq[ev.dev], device, entries)

		var enc *core.BinaryEncoder
		if v, ok := encs.get(ev.dev); ok {
			enc = v.(*core.BinaryEncoder)
		} else {
			enc = core.NewBinaryEncoder(device)
			encs.put(ev.dev, enc)
		}
		doc := enc.Encode(rep)

		var dec *core.BinaryDecoder
		if v, ok := decs.get(ev.dev); ok {
			dec = v.(*core.BinaryDecoder)
		} else {
			dec = core.NewBinaryDecoder()
			decs.put(ev.dev, dec)
		}
		wr, err := dec.Decode(doc)
		if err != nil {
			var dm *core.DictMismatchError
			if !errors.As(err, &dm) {
				log.Fatalf("sim: device %s upload rejected: %v", device, err)
			}
			// The server evicted this device's dictionary: the 409 resync.
			resyncs++
			enc.Reset()
			doc = enc.Encode(rep)
			if wr, err = dec.Decode(doc); err != nil {
				log.Fatalf("sim: resync resend rejected: %v", err)
			}
		}
		binBytes += int64(len(doc))
		if u%64 == 0 {
			var buf bytes.Buffer
			if err := rep.Export(&buf); err == nil {
				jsonSample += int64(buf.Len())
				binSample += int64(len(doc))
			}
		}
		if err := agg.SubmitWireWait(wr); err != nil {
			log.Fatalf("sim: submit: %v", err)
		}

		// Reschedule the device ~1 simulated hour out, jittered ±10%.
		sched[0].at = ev.at + hourMS - hourMS/10 + rng.Int63n(hourMS/5)
		heap.Fix(&sched, 0)
	}
	agg.Close()
	el := time.Since(start)
	rep := agg.Fold()
	ratio := 0.0
	if binSample > 0 {
		ratio = float64(jsonSample) / float64(binSample)
	}
	fmt.Printf("ingested %d uploads in %v: %.0f uploads/s wall\n",
		uploads, el.Round(time.Millisecond), float64(uploads)/el.Seconds())
	fmt.Printf("wire: %.1f MiB binary (%.1fx smaller than JSON, sampled), %d resyncs, %d encoder restarts, %d decoder evictions\n",
		float64(binBytes)/(1<<20), ratio, resyncs, encs.evicted, decs.evicted)
	fmt.Printf("fleet report: %d root causes, %d diagnosed hangs from %d active devices\n",
		rep.Len(), rep.TotalHangs(), len(seq))
}
