// Command fleetload drives load against the fleet ingestion layer: over
// HTTP against running fleetd nodes (JSON or the binary wire encoding,
// with consistent-hash routing across multiple nodes), in-process against
// the shard layer itself, or as a full fleet *simulation* through the
// sharded virtual-time engine in internal/sim — millions of devices
// uploading on a realistic cadence, in-process straight into the
// aggregator or over HTTP with real dictionary deltas and 409 resyncs.
// The in-process mode sweeps shard counts so the scaling claim
// (throughput grows with shards on a multicore host) is reproducible from
// one command.
//
// Usage:
//
//	fleetload -url http://localhost:8717 -uploads 500 -conc 16
//	fleetload -url http://node1:8717,http://node2:8717 -binary -uploads 5000
//	fleetload -inproc -sweep 1,2,4,8 -uploads 2000
//	fleetload -sim -sim-devices 1000000 -sim-uploads 2000000
//	fleetload -sim -url http://node1:8717,http://node2:8717 -sim-devices 4096
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"hangdoctor/internal/core"
	"hangdoctor/internal/fleet"
	"hangdoctor/internal/obs"
	"hangdoctor/internal/sim"
	"hangdoctor/internal/simrand"
)

func main() {
	url := flag.String("url", "", "fleetd base URL(s), comma-separated for ring routing; empty with -inproc/-sim")
	inproc := flag.Bool("inproc", false, "bench the shard layer in-process instead of over HTTP")
	simFlag := flag.Bool("sim", false, "run the fleet simulation engine (in-process without -url, HTTP against -url nodes)")
	binary := flag.Bool("binary", false, "upload in the binary wire encoding with per-device dictionaries")
	sweep := flag.String("sweep", "1,2,4,8", "comma-separated shard counts for -inproc")
	uploads := flag.Int("uploads", 500, "number of device uploads to send")
	entries := flag.Int("entries", 120, "diagnosed root causes per upload")
	conc := flag.Int("conc", 16, "concurrent senders")
	seed := flag.Int64("seed", 1, "base PRNG seed for synthetic uploads")
	maxRetries := flag.Int("max-retries", 8, "give up on an upload after this many 429 retries")
	simDevices := flag.Int("sim-devices", 1_000_000, "distinct devices in the -sim fleet")
	simUploads := flag.Int64("sim-uploads", 2_000_000, "total uploads the -sim fleet sends")
	simEntries := flag.Int("sim-entries", 4, "root causes per -sim upload (devices report small deltas often)")
	simShards := flag.Int("sim-shards", 8, "aggregator shards for in-process -sim")
	simWorkers := flag.Int("sim-workers", 0, "simulation worker shards (0 = GOMAXPROCS)")
	simEpochMS := flag.Int64("sim-epoch-ms", 60_000, "virtual-time barrier interval in simulated ms")
	simRestartEvery := flag.Int64("sim-restart-every", 512, "1/N chance an upload follows a device restart (dictionary reset)")
	simBatch := flag.Int("sim-batch", 64, "device uploads coalesced per aggregator submission (in-process -sim)")
	poll := flag.Duration("poll", 0, "while sending over HTTP, delta-poll the node(s) at this interval (0 = off)")
	flag.Parse()

	var stopPoll func()
	if *poll > 0 && *url != "" && !*inproc && !*simFlag {
		stopPoll = startPoller(splitNodes(*url), *poll)
	}
	switch {
	case *simFlag:
		runSim(simArgs{
			urls:         *url,
			devices:      *simDevices,
			uploads:      *simUploads,
			entries:      *simEntries,
			shards:       *simShards,
			workers:      *simWorkers,
			epochMS:      *simEpochMS,
			restartEvery: *simRestartEvery,
			batch:        *simBatch,
			seed:         *seed,
			maxRetries:   *maxRetries,
		})
	case *inproc:
		runInproc(*sweep, *uploads, *entries, *conc, *seed)
	case *url != "" && *binary:
		runHTTPBinary(*url, *uploads, *entries, *conc, *seed, *maxRetries)
	case *url != "":
		runHTTP(*url, *uploads, *entries, *conc, *seed, *maxRetries)
	default:
		fmt.Fprintln(os.Stderr, "usage: fleetload -url <fleetd>[,<fleetd>...] [-binary] | fleetload -inproc [-sweep 1,2,4,8] | fleetload -sim [-url <fleetd>,...]")
		os.Exit(2)
	}
	if stopPoll != nil {
		stopPoll()
	}
}

// startPoller exercises the incremental read path while the load runs: a
// Regional delta-polls the target nodes at the given interval (echoing
// version vectors, applying deltas) and prints what it saw on stop. This
// is the read half of the load story — folds race ingest instead of
// running against a quiet fleet.
func startPoller(nodes []string, interval time.Duration) (stop func()) {
	reg := fleet.NewRegional(nodes, &http.Client{Timeout: 10 * time.Second})
	reg.NodeTimeout = 5 * time.Second
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		var rounds, deltas, failed int
		var last *core.Report
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				if rounds > 0 && last != nil {
					fmt.Printf("poller: %d rounds (%d delta answers, %d node failures), final view: %d causes, %d hangs\n",
						rounds, deltas, failed, last.Len(), last.TotalHangs())
				}
				return
			case <-tick.C:
				res := reg.PollDelta(context.Background())
				rounds++
				deltas += res.Deltas
				failed += res.Failed
				last = res.Report
			}
		}
	}()
	return func() { close(done); <-finished }
}

// payloads pre-exports the synthetic uploads so generation cost never
// pollutes the ingest measurement.
func payloads(uploads, entries int, seed int64) [][]byte {
	out := make([][]byte, uploads)
	for i := range out {
		rep := fleet.SyntheticUpload(seed+int64(i), fmt.Sprintf("device-%04d", i), entries)
		var buf bytes.Buffer
		if err := rep.Export(&buf); err != nil {
			log.Fatalf("export: %v", err)
		}
		out[i] = buf.Bytes()
	}
	return out
}

// splitNodes parses a comma-separated -url list.
func splitNodes(urls string) []string {
	var nodes []string
	for _, u := range strings.Split(urls, ",") {
		if u = strings.TrimSpace(u); u != "" {
			nodes = append(nodes, strings.TrimRight(u, "/"))
		}
	}
	return nodes
}

// tunedClient is the one HTTP client every sender shares. The default
// transport keeps only two idle connections per host, so at -conc 16 most
// sends would re-dial (and re-handshake) mid-run; sizing the idle pool to
// the sender count keeps every sender's connection warm.
func tunedClient(conc int) *http.Client {
	return &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        2 * conc,
			MaxIdleConnsPerHost: conc,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

func runHTTP(base string, uploads, entries, conc int, seed int64, maxRetries int) {
	base = splitNodes(base)[0]
	docs := payloads(uploads, entries, seed)
	// The loader's own accounting lives in an obs registry: lock-free
	// counters for the senders, a latency histogram for the per-POST round
	// trip (each attempt is one observation, throttled retries included).
	reg := obs.NewRegistry()
	accepted := reg.Counter("fleetload_uploads_accepted_total", "Uploads acknowledged with 202.")
	throttled := reg.Counter("fleetload_throttle_retries_total", "429 responses honored with a backoff retry.")
	failed := reg.Counter("fleetload_uploads_failed_total", "Uploads that errored or got a non-202, non-429 status.")
	latency := reg.Histogram("fleetload_upload_latency_ms",
		"Round-trip wall time of one upload POST.", obs.ExpBuckets(0.25, 2, 16))
	var wg sync.WaitGroup
	next := make(chan []byte)
	client := tunedClient(conc)
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		// Each sender jitters its backoff from a private derived stream, so
		// retries stay reproducible per seed without sharing a lock.
		rng := simrand.New(uint64(seed)).Derive("fleetload/retry").Derive(strconv.Itoa(w))
		go func() {
			defer wg.Done()
			// One reusable request body per sender: a POST is fully read
			// before the next begins, so the reader recycles cleanly.
			body := bytes.NewReader(nil)
			for doc := range next {
				for retries := 0; ; retries++ {
					t0 := time.Now()
					body.Reset(doc)
					req, err := http.NewRequest(http.MethodPost, base+"/v1/upload", body)
					if err != nil {
						failed.Inc()
						break
					}
					req.Header.Set("Content-Type", "application/json")
					resp, err := client.Do(req)
					if err != nil {
						failed.Inc()
						break
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					latency.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
					if resp.StatusCode == http.StatusTooManyRequests {
						if retries >= maxRetries {
							// Persistent backpressure: give up rather than
							// hammer a server that keeps saying no.
							failed.Inc()
							break
						}
						// Honor the server's backpressure, jittering around the
						// advertised delay (uniform in [base/2, base*3/2)) so a
						// throttled cohort does not retry in lockstep and
						// re-create the very spike that throttled it.
						throttled.Inc()
						delay := time.Second
						if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
							delay = time.Duration(ra) * time.Second
						}
						time.Sleep(delay/2 + time.Duration(rng.Int63n(int64(delay))))
						continue
					}
					if resp.StatusCode == http.StatusAccepted {
						accepted.Inc()
					} else {
						failed.Inc()
					}
					break
				}
			}
		}()
	}
	for _, doc := range docs {
		next <- doc
	}
	close(next)
	wg.Wait()
	el := time.Since(start)
	fmt.Printf("sent %d uploads in %v: %.0f uploads/s (accepted=%d throttled-retries=%d failed=%d)\n",
		uploads, el.Round(time.Millisecond), float64(uploads)/el.Seconds(),
		accepted.Value(), throttled.Value(), failed.Value())
	h := reg.Snapshot().Histogram("fleetload_upload_latency_ms")
	fmt.Printf("upload latency: p50=%.2fms p95=%.2fms p99=%.2fms (%d round trips)\n",
		h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Count)
	if failed.Value() > 0 {
		os.Exit(1)
	}
}

// runHTTPBinary uploads in the binary wire encoding: devices are sticky to
// one worker (dictionary deltas are ordered per device) and to one node via
// the consistent-hash ring, each device streams several uploads through its
// own encoder, and a 409 answer triggers the reset-and-resend resync.
func runHTTPBinary(urls string, uploads, entries, conc int, seed int64, maxRetries int) {
	nodes := splitNodes(urls)
	ring := fleet.NewRing(nodes, 0)
	const perDev = 8 // uploads per device: deltas amortize the dictionary
	reg := obs.NewRegistry()
	accepted := reg.Counter("fleetload_uploads_accepted_total", "Uploads acknowledged with 202.")
	throttled := reg.Counter("fleetload_throttle_retries_total", "429 responses honored with a backoff retry.")
	resyncs := reg.Counter("fleetload_dict_resyncs_total", "409 dictionary resets honored with a full-dictionary resend.")
	failed := reg.Counter("fleetload_uploads_failed_total", "Uploads that errored or got a non-202 terminal status.")
	sent := reg.Counter("fleetload_bytes_sent_total", "Request body bytes sent (all attempts).")
	latency := reg.Histogram("fleetload_upload_latency_ms",
		"Round-trip wall time of one upload POST.", obs.ExpBuckets(0.25, 2, 16))
	var wg sync.WaitGroup
	client := tunedClient(conc)
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		rng := simrand.New(uint64(seed)).Derive("fleetload/retry").Derive(strconv.Itoa(w))
		go func(w int) {
			defer wg.Done()
			body := bytes.NewReader(nil)
			post := func(node string, doc []byte) (int, error) {
				t0 := time.Now()
				body.Reset(doc)
				req, err := http.NewRequest(http.MethodPost, node+"/v1/upload", body)
				if err != nil {
					return 0, err
				}
				req.Header.Set("Content-Type", core.BinaryContentType)
				resp, err := client.Do(req)
				if err != nil {
					return 0, err
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				sent.Add(int64(len(doc)))
				latency.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
				return resp.StatusCode, nil
			}
			for d := w; d*perDev < uploads; d += conc {
				device := fmt.Sprintf("device-%06d", d)
				node := ring.Node(device)
				enc := core.NewBinaryEncoder(device)
				lo, hi := d*perDev, (d+1)*perDev
				if hi > uploads {
					hi = uploads
				}
				for i := lo; i < hi; i++ {
					rep := fleet.SyntheticUpload(seed+int64(i), device, entries)
					doc := append([]byte(nil), enc.Encode(rep)...)
					ok := false
					for retries := 0; retries <= maxRetries; retries++ {
						code, err := post(node, doc)
						if err != nil {
							break
						}
						if code == http.StatusConflict {
							// The server lost this device's dictionary
							// (restart or eviction): resend self-contained.
							resyncs.Inc()
							enc.Reset()
							doc = append(doc[:0], enc.Encode(rep)...)
							continue
						}
						if code == http.StatusTooManyRequests {
							throttled.Inc()
							time.Sleep(time.Second/2 + time.Duration(rng.Int63n(int64(time.Second))))
							continue
						}
						ok = code == http.StatusAccepted
						break
					}
					if ok {
						accepted.Inc()
					} else {
						failed.Inc()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	el := time.Since(start)
	fmt.Printf("sent %d binary uploads across %d node(s) in %v: %.0f uploads/s (accepted=%d resyncs=%d throttled-retries=%d failed=%d, %.1f MiB sent)\n",
		uploads, len(nodes), el.Round(time.Millisecond), float64(uploads)/el.Seconds(),
		accepted.Value(), resyncs.Value(), throttled.Value(), failed.Value(),
		float64(sent.Value())/(1<<20))
	h := reg.Snapshot().Histogram("fleetload_upload_latency_ms")
	fmt.Printf("upload latency: p50=%.2fms p95=%.2fms p99=%.2fms (%d round trips)\n",
		h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Count)
	if failed.Value() > 0 {
		os.Exit(1)
	}
}

func runInproc(sweep string, uploads, entries, conc int, seed int64) {
	reps := make([]*core.Report, uploads)
	for i := range reps {
		reps[i] = fleet.SyntheticUpload(seed+int64(i), fmt.Sprintf("device-%04d", i), entries)
	}
	type row struct {
		shards int
		rate   float64
	}
	var rows []row
	for _, f := range strings.Split(sweep, ",") {
		shards, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || shards < 1 {
			log.Fatalf("bad -sweep element %q", f)
		}
		agg := fleet.NewAggregator(fleet.Config{Shards: shards, QueueDepth: 4 * uploads})
		start := time.Now()
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					// Submissions hand ownership to the aggregator; clone so
					// the pre-built upload survives for the next sweep point.
					if err := agg.SubmitWait(reps[i].Clone()); err != nil {
						log.Fatalf("submit: %v", err)
					}
				}
			}()
		}
		for i := range reps {
			next <- i
		}
		close(next)
		wg.Wait()
		agg.Close() // drain: the measurement covers every merge
		el := time.Since(start)
		rate := float64(uploads) / el.Seconds()
		rows = append(rows, row{shards, rate})
		rep := agg.Fold()
		fmt.Printf("shards=%-2d  %8.0f uploads/s  (%v total, %d causes, %d hangs)\n",
			shards, rate, el.Round(time.Millisecond), rep.Len(), rep.TotalHangs())
	}
	if len(rows) > 1 {
		base := rows[0]
		for _, r := range rows[1:] {
			fmt.Printf("speedup %d->%d shards: %.2fx\n", base.shards, r.shards, r.rate/base.rate)
		}
	}
}

// ---------------------------------------------------------------------------
// Fleet simulation

type simArgs struct {
	urls         string
	devices      int
	uploads      int64
	entries      int
	shards       int
	workers      int
	epochMS      int64
	restartEvery int64
	batch        int
	seed         int64
	maxRetries   int
}

// runSim drives the sharded virtual-time engine (internal/sim). Without
// -url the fleet uploads in-process straight into a sharded aggregator
// (the decoded-wire zero-copy path, batched); with -url the fleet speaks
// the real binary protocol against the given fleetd nodes — dictionary
// deltas, device restarts, 409 resyncs, 429 backpressure — with devices
// ring-routed to nodes exactly like production clients. The old
// single-goroutine, single-heap scheduler this replaces lives on only as
// the baseline-pr7 row of BenchmarkSimEngine.
func runSim(a simArgs) {
	cfg := sim.Config{
		Devices:      a.devices,
		Uploads:      a.uploads,
		Entries:      a.entries,
		Workers:      a.workers,
		Seed:         a.seed,
		EpochMS:      a.epochMS,
		RestartEvery: a.restartEvery,
		Batch:        a.batch,
		MaxRetries:   a.maxRetries,
	}
	var agg *fleet.Aggregator
	mode := "http"
	if a.urls == "" {
		agg = fleet.NewAggregator(fleet.Config{Shards: a.shards, QueueDepth: 4096})
		cfg.Agg = agg
		mode = "inproc"
	} else {
		cfg.Nodes = splitNodes(a.urls)
	}
	eng, err := sim.New(cfg)
	if err != nil {
		log.Fatalf("fleetload: %v", err)
	}
	fmt.Printf("simulating %d devices, %d uploads (%d entries each): %s sink, %d workers\n",
		a.devices, a.uploads, a.entries, mode, eng.Workers())
	st, err := eng.Run()
	if err != nil {
		log.Fatalf("fleetload: sim run: %v", err)
	}
	fmt.Printf("sim: delivered %d uploads in %v: %.0f uploads/s, %.3g simulated device-seconds/s\n",
		st.Uploads, st.Wall.Round(time.Millisecond), float64(st.Uploads)/st.Wall.Seconds(),
		st.DeviceSecondsPerSec())
	fmt.Printf("sim: failed=%d resyncs=%d server-resyncs=%d throttled=%d epochs=%d wire=%.1f MiB\n",
		st.Failed, st.Resyncs, st.ServerResyncs, st.Throttled, st.Epochs,
		float64(st.WireBytes)/(1<<20))
	if agg != nil {
		agg.Close()
		rep := agg.Fold()
		fmt.Printf("fleet report: %d root causes, %d diagnosed hangs\n", rep.Len(), rep.TotalHangs())
	}
	if st.Failed > 0 {
		os.Exit(1)
	}
}
