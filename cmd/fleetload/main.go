// Command fleetload drives load against the fleet ingestion layer, either
// over HTTP against a running fleetd or in-process against the shard layer
// itself, and reports ingest throughput. The in-process mode sweeps shard
// counts so the scaling claim (throughput grows with shards on a multicore
// host) is reproducible from one command.
//
// Usage:
//
//	fleetload -url http://localhost:8717 -uploads 500 -conc 16
//	fleetload -inproc -sweep 1,2,4,8 -uploads 2000
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"hangdoctor/internal/core"
	"hangdoctor/internal/fleet"
	"hangdoctor/internal/obs"
	"hangdoctor/internal/simrand"
)

func main() {
	url := flag.String("url", "", "fleetd base URL (e.g. http://localhost:8717); empty with -inproc")
	inproc := flag.Bool("inproc", false, "bench the shard layer in-process instead of over HTTP")
	sweep := flag.String("sweep", "1,2,4,8", "comma-separated shard counts for -inproc")
	uploads := flag.Int("uploads", 500, "number of device uploads to send")
	entries := flag.Int("entries", 120, "diagnosed root causes per upload")
	conc := flag.Int("conc", 16, "concurrent senders")
	seed := flag.Int64("seed", 1, "base PRNG seed for synthetic uploads")
	maxRetries := flag.Int("max-retries", 8, "give up on an upload after this many 429 retries")
	flag.Parse()

	switch {
	case *inproc:
		runInproc(*sweep, *uploads, *entries, *conc, *seed)
	case *url != "":
		runHTTP(*url, *uploads, *entries, *conc, *seed, *maxRetries)
	default:
		fmt.Fprintln(os.Stderr, "usage: fleetload -url <fleetd> | fleetload -inproc [-sweep 1,2,4,8]")
		os.Exit(2)
	}
}

// payloads pre-exports the synthetic uploads so generation cost never
// pollutes the ingest measurement.
func payloads(uploads, entries int, seed int64) [][]byte {
	out := make([][]byte, uploads)
	for i := range out {
		rep := fleet.SyntheticUpload(seed+int64(i), fmt.Sprintf("device-%04d", i), entries)
		var buf bytes.Buffer
		if err := rep.Export(&buf); err != nil {
			log.Fatalf("export: %v", err)
		}
		out[i] = buf.Bytes()
	}
	return out
}

func runHTTP(base string, uploads, entries, conc int, seed int64, maxRetries int) {
	docs := payloads(uploads, entries, seed)
	// The loader's own accounting lives in an obs registry: lock-free
	// counters for the senders, a latency histogram for the per-POST round
	// trip (each attempt is one observation, throttled retries included).
	reg := obs.NewRegistry()
	accepted := reg.Counter("fleetload_uploads_accepted_total", "Uploads acknowledged with 202.")
	throttled := reg.Counter("fleetload_throttle_retries_total", "429 responses honored with a backoff retry.")
	failed := reg.Counter("fleetload_uploads_failed_total", "Uploads that errored or got a non-202, non-429 status.")
	latency := reg.Histogram("fleetload_upload_latency_ms",
		"Round-trip wall time of one upload POST.", obs.ExpBuckets(0.25, 2, 16))
	var wg sync.WaitGroup
	next := make(chan []byte)
	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		// Each sender jitters its backoff from a private derived stream, so
		// retries stay reproducible per seed without sharing a lock.
		rng := simrand.New(uint64(seed)).Derive("fleetload/retry").Derive(strconv.Itoa(w))
		go func() {
			defer wg.Done()
			for doc := range next {
				for retries := 0; ; retries++ {
					t0 := time.Now()
					resp, err := client.Post(base+"/v1/upload", "application/json", bytes.NewReader(doc))
					if err != nil {
						failed.Inc()
						break
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					latency.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
					if resp.StatusCode == http.StatusTooManyRequests {
						if retries >= maxRetries {
							// Persistent backpressure: give up rather than
							// hammer a server that keeps saying no.
							failed.Inc()
							break
						}
						// Honor the server's backpressure, jittering around the
						// advertised delay (uniform in [base/2, base*3/2)) so a
						// throttled cohort does not retry in lockstep and
						// re-create the very spike that throttled it.
						throttled.Inc()
						delay := time.Second
						if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
							delay = time.Duration(ra) * time.Second
						}
						time.Sleep(delay/2 + time.Duration(rng.Int63n(int64(delay))))
						continue
					}
					if resp.StatusCode == http.StatusAccepted {
						accepted.Inc()
					} else {
						failed.Inc()
					}
					break
				}
			}
		}()
	}
	for _, doc := range docs {
		next <- doc
	}
	close(next)
	wg.Wait()
	el := time.Since(start)
	fmt.Printf("sent %d uploads in %v: %.0f uploads/s (accepted=%d throttled-retries=%d failed=%d)\n",
		uploads, el.Round(time.Millisecond), float64(uploads)/el.Seconds(),
		accepted.Value(), throttled.Value(), failed.Value())
	h := reg.Snapshot().Histogram("fleetload_upload_latency_ms")
	fmt.Printf("upload latency: p50=%.2fms p95=%.2fms p99=%.2fms (%d round trips)\n",
		h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Count)
}

func runInproc(sweep string, uploads, entries, conc int, seed int64) {
	reps := make([]*core.Report, uploads)
	for i := range reps {
		reps[i] = fleet.SyntheticUpload(seed+int64(i), fmt.Sprintf("device-%04d", i), entries)
	}
	type row struct {
		shards int
		rate   float64
	}
	var rows []row
	for _, f := range strings.Split(sweep, ",") {
		shards, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || shards < 1 {
			log.Fatalf("bad -sweep element %q", f)
		}
		agg := fleet.NewAggregator(fleet.Config{Shards: shards, QueueDepth: 4 * uploads})
		start := time.Now()
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					// Submissions hand ownership to the aggregator; clone so
					// the pre-built upload survives for the next sweep point.
					if err := agg.SubmitWait(reps[i].Clone()); err != nil {
						log.Fatalf("submit: %v", err)
					}
				}
			}()
		}
		for i := range reps {
			next <- i
		}
		close(next)
		wg.Wait()
		agg.Close() // drain: the measurement covers every merge
		el := time.Since(start)
		rate := float64(uploads) / el.Seconds()
		rows = append(rows, row{shards, rate})
		rep := agg.Fold()
		fmt.Printf("shards=%-2d  %8.0f uploads/s  (%v total, %d causes, %d hangs)\n",
			shards, rate, el.Round(time.Millisecond), rep.Len(), rep.TotalHangs())
	}
	if len(rows) > 1 {
		base := rows[0]
		for _, r := range rows[1:] {
			fmt.Printf("speedup %d->%d shards: %.2fx\n", base.shards, r.shards, r.rate/base.rate)
		}
	}
}
