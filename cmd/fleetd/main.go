// Command fleetd is the fleet ingestion server: the always-on half of the
// paper's §3.2 upload path. Devices POST their anonymized Hang Bug Reports
// to /v1/upload; fleetd validates each document, shards its entries across
// single-writer merge goroutines behind a bounded backpressure queue, and
// serves the folded fleet-wide report on /v1/report plus /healthz and
// /metrics for operations.
//
// Usage:
//
//	fleetd -addr :8717 -shards 8 -queue 1024
//	fleetd -addr :8717 -wal-dir /var/lib/fleetd/wal -wal-sync batch
//
// With -wal-dir set, ingestion is durable: a 202 means the upload reached
// a per-shard write-ahead log and survives a crash; on boot the WAL
// directory is replayed (snapshot plus log tail) before intake opens, and
// a torn final record — the signature of dying mid-append — is truncated,
// never fatal.
//
// On SIGINT/SIGTERM the server stops accepting connections, drains every
// upload it already acknowledged (writing one final compacted snapshot
// per shard when durable), and prints the final fleet report to stdout
// before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hangdoctor/internal/fleet"
)

func main() {
	addr := flag.String("addr", ":8717", "listen address")
	shards := flag.Int("shards", 8, "number of single-writer merge shards")
	queue := flag.Int("queue", 1024, "bounded ingest queue depth (429 beyond it)")
	batch := flag.Int("batch", 16, "max fragments folded per shard merge")
	retryAfter := flag.Duration("retry-after", time.Second, "backoff advertised on 429 responses")
	printFinal := flag.Bool("print-final", true, "print the folded fleet report on shutdown")
	walDir := flag.String("wal-dir", "", "durable mode: per-shard WAL directory (empty = memory-only)")
	walSync := flag.String("wal-sync", "batch", "WAL durability barrier: always | batch | off")
	compactEvery := flag.Int("compact-every", 4096, "snapshot-compact a shard log after this many records")
	dictCache := flag.Int("dict-cache", fleet.DefaultDictDevices, "devices whose binary-upload dictionary state is retained (LRU beyond it)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			// net/http/pprof registers on the default mux; the ingest mux is
			// custom, so profiling stays off the public listener.
			log.Printf("fleetd: pprof on %s", *pprofAddr)
			log.Fatal(http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	cfg := fleet.Config{Shards: *shards, QueueDepth: *queue, BatchSize: *batch}
	if *walDir != "" {
		sync, err := fleet.ParseSyncPolicy(*walSync)
		if err != nil {
			log.Fatalf("fleetd: %v", err)
		}
		cfg.WAL = &fleet.WALConfig{Dir: *walDir, Sync: sync, CompactEvery: *compactEvery}
	}
	agg, err := fleet.Open(cfg)
	if err != nil {
		// Refusing to start beats silently dropping compacted state: the
		// operator decides whether to restore or discard the directory.
		log.Fatalf("fleetd: recovery failed: %v", err)
	}
	if agg.Durable() {
		snap := agg.Metrics().Registry().Snapshot()
		log.Printf("fleetd recovered WAL %s: replayed_records=%d truncated_tails=%d corrupt_records=%d compactions=%d",
			*walDir,
			snap.Value("hangdoctor_fleet_wal_replayed_records_total"),
			snap.Value("hangdoctor_fleet_wal_truncated_tails_total"),
			snap.Value("hangdoctor_fleet_wal_corrupt_records_total"),
			snap.Value("hangdoctor_fleet_wal_compactions_total"))
	}
	fs := fleet.NewServerDict(agg, *dictCache)
	fs.RetryAfter = *retryAfter
	srv := &http.Server{Addr: *addr, Handler: fs.Handler()}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("fleetd listening on %s (%s)", *addr, agg)
		errCh <- srv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %v, draining", s)
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	}

	// Stop intake first, then drain: in-flight requests finish (Submit keeps
	// working), and only then does the aggregator fold what it acknowledged.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	agg.Close()
	snap := agg.Snapshot()
	log.Printf("drained: accepted=%d rejected=%d invalid=%d merges=%d entries=%d hangs=%d",
		snap.Accepted, snap.Rejected, snap.Invalid, snap.Merges, snap.Entries(), snap.Hangs())
	if *printFinal {
		rep := agg.Fold()
		fmt.Printf("fleet report: %d root causes, %d diagnosed hangs\n\n%s", rep.Len(), rep.TotalHangs(), rep.Render())
	}
}
