// Command fleetd is the fleet ingestion server: the always-on half of the
// paper's §3.2 upload path. Devices POST their anonymized Hang Bug Reports
// to /v1/upload; fleetd validates each document, shards its entries across
// single-writer merge goroutines behind a bounded backpressure queue, and
// serves the folded fleet-wide report on /v1/report plus /healthz and
// /metrics for operations.
//
// Usage:
//
//	fleetd -addr :8717 -shards 8 -queue 1024
//
// On SIGINT/SIGTERM the server stops accepting connections, drains every
// upload it already acknowledged, and prints the final fleet report to
// stdout before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hangdoctor/internal/fleet"
)

func main() {
	addr := flag.String("addr", ":8717", "listen address")
	shards := flag.Int("shards", 8, "number of single-writer merge shards")
	queue := flag.Int("queue", 1024, "bounded ingest queue depth (429 beyond it)")
	batch := flag.Int("batch", 16, "max fragments folded per shard merge")
	retryAfter := flag.Duration("retry-after", time.Second, "backoff advertised on 429 responses")
	printFinal := flag.Bool("print-final", true, "print the folded fleet report on shutdown")
	flag.Parse()

	agg := fleet.NewAggregator(fleet.Config{Shards: *shards, QueueDepth: *queue, BatchSize: *batch})
	fs := fleet.NewServer(agg)
	fs.RetryAfter = *retryAfter
	srv := &http.Server{Addr: *addr, Handler: fs.Handler()}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("fleetd listening on %s (%s)", *addr, agg)
		errCh <- srv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %v, draining", s)
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	}

	// Stop intake first, then drain: in-flight requests finish (Submit keeps
	// working), and only then does the aggregator fold what it acknowledged.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	agg.Close()
	snap := agg.Snapshot()
	log.Printf("drained: accepted=%d rejected=%d invalid=%d merges=%d entries=%d hangs=%d",
		snap.Accepted, snap.Rejected, snap.Invalid, snap.Merges, snap.Entries(), snap.Hangs())
	if *printFinal {
		rep := agg.Fold()
		fmt.Printf("fleet report: %d root causes, %d diagnosed hangs\n\n%s", rep.Len(), rep.TotalHangs(), rep.Render())
	}
}
