// Command fleet-agg is the regional tier above fleetd: it polls N fleetd
// nodes' /v1/snapshot (canonical binary fold) and /metrics/snapshot (obs
// registry) endpoints and serves the folded regional view. Because node
// snapshots fold with the same commutative merge that folds a node's
// shards, the regional report is byte-identical to a single fleetd having
// ingested every upload itself — which is how a deployment scales ingest
// horizontally without changing what the report says.
//
// Usage:
//
//	fleet-agg -nodes http://10.0.0.1:8717,http://10.0.0.2:8717 -addr :8718
//
// Endpoints:
//
//	GET /v1/report    — the folded regional report (text, or ?format=json)
//	GET /v1/snapshot  — the folded regional report in canonical binary form
//	                    (fleet-agg tiers compose: a super-region can fold
//	                    regions the same way)
//	GET /metrics      — the merged node registries, Prometheus text
//	GET /healthz      — last poll status per node
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"hangdoctor/internal/core"
	"hangdoctor/internal/fleet"
	"hangdoctor/internal/obs"
)

// state is the last successful poll, swapped atomically under the mutex so
// readers never see a half-updated region.
type state struct {
	mu      sync.RWMutex
	rep     *core.Report
	metrics obs.Snapshot
	polled  time.Time
	err     error
}

func (s *state) set(rep *core.Report, m obs.Snapshot, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		s.rep, s.metrics, s.polled = rep, m, time.Now()
	}
	s.err = err
}

func (s *state) get() (*core.Report, obs.Snapshot, time.Time, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rep := s.rep
	if rep == nil {
		rep = core.NewReport()
	}
	return rep, s.metrics, s.polled, s.err
}

func main() {
	addr := flag.String("addr", ":8718", "listen address")
	nodes := flag.String("nodes", "", "comma-separated fleetd base URLs (required)")
	interval := flag.Duration("interval", 10*time.Second, "node poll interval")
	timeout := flag.Duration("timeout", 30*time.Second, "per-poll HTTP timeout")
	flag.Parse()

	var urls []string
	for _, n := range strings.Split(*nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			urls = append(urls, strings.TrimRight(n, "/"))
		}
	}
	if len(urls) == 0 {
		log.Fatal("fleet-agg: -nodes is required (comma-separated fleetd base URLs)")
	}
	reg := fleet.NewRegional(urls, &http.Client{Timeout: *timeout})
	st := &state{}

	poll := func() {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		rep, err := reg.Fold(ctx)
		var m obs.Snapshot
		if err == nil {
			m, err = reg.Metrics(ctx)
		}
		st.set(rep, m, err)
		if err != nil {
			log.Printf("fleet-agg: poll failed: %v", err)
		}
	}
	poll()
	go func() {
		for range time.Tick(*interval) {
			poll()
		}
	}()

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/report", func(w http.ResponseWriter, r *http.Request) {
		rep, _, _, _ := st.get()
		if r.URL.Query().Get("format") == "json" {
			var buf bytes.Buffer
			if err := rep.Export(&buf); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(buf.Bytes())
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "regional report (%d nodes): %d root causes, %d diagnosed hangs\n\n",
			len(urls), rep.Len(), rep.TotalHangs())
		fmt.Fprint(w, rep.Render())
	})
	mux.HandleFunc("/v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		rep, _, _, _ := st.get()
		doc := core.AppendReportBinary(nil, rep)
		w.Header().Set("Content-Type", core.BinaryContentType)
		w.Header().Set("Content-Length", strconv.Itoa(len(doc)))
		w.Write(doc)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		_, m, _, _ := st.get()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WriteTo(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		_, _, polled, err := st.get()
		status, code := "ok", http.StatusOK
		if err != nil {
			status, code = "degraded", http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		resp := map[string]any{
			"status": status, "nodes": len(urls), "last_poll": polled.Format(time.RFC3339),
		}
		if err != nil {
			resp["error"] = err.Error()
		}
		json.NewEncoder(w).Encode(resp)
	})

	log.Printf("fleet-agg listening on %s, folding %d nodes every %v", *addr, len(urls), *interval)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
