// Command fleet-agg is the regional tier above fleetd: it polls N fleetd
// nodes' /v1/snapshot (canonical binary fold) and /metrics/snapshot (obs
// registry) endpoints and serves the folded regional view. Because node
// snapshots fold with the same commutative merge that folds a node's
// shards, the regional report is byte-identical to a single fleetd having
// ingested every upload itself — which is how a deployment scales ingest
// horizontally without changing what the report says.
//
// By default polling is incremental: fleet-agg remembers each node's
// version vector and asks /v1/snapshot?since=<vector>, so steady-state
// rounds move only the entries that changed (plus health) and fold them
// into a materialized regional report. A node restart resyncs that node
// in full automatically; -delta=false restores the stateless
// full-snapshot fold. Poll rounds are jittered so a fleet of aggregators
// doesn't thunder in phase, and each node fetch is bounded by
// -node-timeout so one slow node can't stall the round — failed nodes
// keep their last mirrored state and the aggregator reports itself
// degraded instead of going dark.
//
// Usage:
//
//	fleet-agg -nodes http://10.0.0.1:8717,http://10.0.0.2:8717 -addr :8718
//
// Endpoints:
//
//	GET /v1/report    — the folded regional report (text, or ?format=json)
//	GET /v1/snapshot  — the folded regional report in canonical binary form
//	                    (fleet-agg tiers compose: a super-region can fold
//	                    regions the same way)
//	GET /metrics      — the merged node registries, Prometheus text
//	GET /healthz      — last poll status per node
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"hangdoctor/internal/core"
	"hangdoctor/internal/fleet"
	"hangdoctor/internal/obs"
)

// state is the last poll's outcome, swapped atomically under the mutex so
// readers never see a half-updated region.
type state struct {
	mu      sync.RWMutex
	rep     *core.Report
	metrics obs.Snapshot
	polled  time.Time
	err     error
	failed  int // nodes that failed the last round (delta mode)
	deltas  int // nodes that answered the last round with a delta
}

// set records a stateless full-fold round: on error the previous report
// is kept (fail-closed Fold returns nothing useful to store).
func (s *state) set(rep *core.Report, m obs.Snapshot, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		s.rep, s.metrics, s.polled = rep, m, time.Now()
	}
	s.err = err
	if err != nil {
		s.failed = 1
	} else {
		s.failed = 0
	}
}

// setPoll records a delta round: the report always advances (failed nodes
// contribute their last mirrored state), metrics only when the metrics
// fetch succeeded.
func (s *state) setPoll(res fleet.PollResult, m obs.Snapshot, merr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rep, s.polled = res.Report, time.Now()
	s.failed, s.deltas = res.Failed, res.Deltas
	s.err = merr
	if s.err == nil {
		s.metrics = m
		for _, err := range res.Errs {
			if err != nil {
				s.err = err
				break
			}
		}
	}
}

func (s *state) get() (*core.Report, obs.Snapshot, time.Time, error, int, int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rep := s.rep
	if rep == nil {
		rep = core.NewReport()
	}
	return rep, s.metrics, s.polled, s.err, s.failed, s.deltas
}

func main() {
	addr := flag.String("addr", ":8718", "listen address")
	nodes := flag.String("nodes", "", "comma-separated fleetd base URLs (required)")
	interval := flag.Duration("interval", 10*time.Second, "node poll interval")
	jitter := flag.Duration("jitter", -1, "max random delay added per poll round (-1 = interval/5, 0 disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "whole-round HTTP timeout")
	nodeTimeout := flag.Duration("node-timeout", 10*time.Second, "per-node fetch timeout within a round (0 = round timeout only)")
	delta := flag.Bool("delta", true, "poll nodes incrementally via /v1/snapshot?since= (false = full snapshot each round)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	flag.Parse()

	var urls []string
	for _, n := range strings.Split(*nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			urls = append(urls, strings.TrimRight(n, "/"))
		}
	}
	if len(urls) == 0 {
		log.Fatal("fleet-agg: -nodes is required (comma-separated fleetd base URLs)")
	}
	if *jitter < 0 {
		*jitter = *interval / 5
	}
	reg := fleet.NewRegional(urls, &http.Client{Timeout: *timeout})
	reg.NodeTimeout = *nodeTimeout
	st := &state{}

	if *pprofAddr != "" {
		go func() {
			// net/http/pprof registers on the default mux; the API mux below
			// is custom, so profiling stays off the public listener.
			log.Printf("fleet-agg: pprof on %s", *pprofAddr)
			log.Fatal(http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	poll := func() {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		if *delta {
			res := reg.PollDelta(ctx)
			m, merr := reg.Metrics(ctx)
			st.setPoll(res, m, merr)
			for i, err := range res.Errs {
				if err != nil {
					log.Printf("fleet-agg: node %s: %v", urls[i], err)
				}
			}
			if merr != nil {
				log.Printf("fleet-agg: metrics poll failed: %v", merr)
			}
			return
		}
		rep, err := reg.Fold(ctx)
		var m obs.Snapshot
		if err == nil {
			m, err = reg.Metrics(ctx)
		}
		st.set(rep, m, err)
		if err != nil {
			log.Printf("fleet-agg: poll failed: %v", err)
		}
	}
	poll()
	go func() {
		for {
			d := *interval
			if *jitter > 0 {
				d += time.Duration(rand.Int63n(int64(*jitter)))
			}
			time.Sleep(d)
			poll()
		}
	}()

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/report", func(w http.ResponseWriter, r *http.Request) {
		rep, _, _, _, _, _ := st.get()
		if r.URL.Query().Get("format") == "json" {
			var buf bytes.Buffer
			if err := rep.Export(&buf); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(buf.Bytes())
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "regional report (%d nodes): %d root causes, %d diagnosed hangs\n\n",
			len(urls), rep.Len(), rep.TotalHangs())
		fmt.Fprint(w, rep.Render())
	})
	mux.HandleFunc("/v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		rep, _, _, _, _, _ := st.get()
		doc := core.AppendReportBinary(nil, rep)
		w.Header().Set("Content-Type", core.BinaryContentType)
		w.Header().Set("Content-Length", strconv.Itoa(len(doc)))
		w.Write(doc)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		_, m, _, _, _, _ := st.get()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WriteTo(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		_, _, polled, err, failed, deltas := st.get()
		status, code := "ok", http.StatusOK
		if err != nil || failed > 0 {
			// Degraded, not dead: the report endpoints keep serving the last
			// mirrored state for every node that still answers.
			status, code = "degraded", http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		resp := map[string]any{
			"status": status, "nodes": len(urls), "failed_nodes": failed,
			"delta_nodes": deltas, "last_poll": polled.Format(time.RFC3339),
		}
		if err != nil {
			resp["error"] = err.Error()
		}
		json.NewEncoder(w).Encode(resp)
	})

	log.Printf("fleet-agg listening on %s, folding %d nodes every %v (delta=%v)", *addr, len(urls), *interval, *delta)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
