package main

import (
	"testing"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/core"
	"hangdoctor/internal/corpus"
)

func TestBuildDetector(t *testing.T) {
	c := corpus.Build()
	a := c.MustApp("K9-Mail")
	trace := corpus.Trace(a, 42, 60)
	for _, name := range []string{"hd", "ti", "utl", "uth", "utl+ti", "uth+ti"} {
		det, err := buildDetector(name, a, app.LGV10(), 42, trace)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if det == nil {
			t.Fatalf("%s: nil detector", name)
		}
	}
	if _, err := buildDetector("nope", a, app.LGV10(), 42, trace); err == nil {
		t.Fatal("unknown detector accepted")
	}
	// hd resolves to the real Doctor.
	det, _ := buildDetector("hd", a, app.LGV10(), 42, trace)
	if _, ok := det.(*core.Doctor); !ok {
		t.Fatalf("hd detector has type %T", det)
	}
}
