// Command hangdoctor-sim runs one corpus app under a chosen detector on a
// simulated device and prints what the detector found.
//
// Usage:
//
//	hangdoctor-sim -app K9-Mail [-detector hd|ti|utl|uth|utl+ti|uth+ti]
//	               [-actions 200] [-seed 42] [-device lgv10|nexus5|galaxys3]
//	               [-transitions] [-offline]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/core"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/detect"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/trace"
)

func main() {
	appName := flag.String("app", "K9-Mail", "corpus app to run")
	detName := flag.String("detector", "hd", "detector: hd, ti, utl, uth, utl+ti, uth+ti")
	actions := flag.Int("actions", 200, "number of user actions in the trace")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	deviceName := flag.String("device", "lgv10", "device model: lgv10, nexus5, galaxys3")
	showTransitions := flag.Bool("transitions", false, "print the HD state-transition log")
	offline := flag.Bool("offline", false, "also run the offline scanner and compare")
	traceOut := flag.String("trace", "", "write a Chrome trace (chrome://tracing / Perfetto) of the run to this file")
	listApps := flag.Bool("list", false, "list corpus apps and exit")
	flag.Parse()

	c := corpus.Build()
	if *listApps {
		for _, a := range c.Apps {
			fmt.Printf("%-24s %-18s bugs=%d\n", a.Name, a.Category, len(a.Bugs))
		}
		return
	}
	a, ok := c.App(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "no app %q in corpus (try -list)\n", *appName)
		os.Exit(2)
	}
	var dev app.Device
	switch *deviceName {
	case "lgv10":
		dev = app.LGV10()
	case "nexus5":
		dev = app.Nexus5()
	case "galaxys3":
		dev = app.GalaxyS3()
	default:
		fmt.Fprintf(os.Stderr, "unknown device %q\n", *deviceName)
		os.Exit(2)
	}

	traceActions := corpus.Trace(a, *seed, *actions)
	det, err := buildDetector(*detName, a, dev, *seed, traceActions)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	h, err := detect.NewHarness(a, dev, *seed, det)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var collector *trace.Collector
	if *traceOut != "" {
		collector = trace.NewCollector(h.Session.Clk)
		h.Session.Sched.SetTracer(collector)
		h.Session.Looper.AddDispatchHook(collector)
		h.Session.AddListener(collector)
	}
	h.Run(traceActions, simclock.Second)
	if collector != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := collector.WriteChromeTrace(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %d trace spans to %s\n", len(collector.Spans()), *traceOut)
	}

	ev := h.Evaluate(det)
	fmt.Printf("app %s on %s: %d actions, %d bug hangs, %d UI hangs\n",
		a.Name, dev.Name, *actions, ev.GroundTruthHangs, ev.UIHangs)
	fmt.Printf("%s: TP=%d FP=%d FN=%d, overhead %.2f%%\n",
		det.Name(), ev.TP, ev.FP, ev.FN, h.Overhead(det).Avg())
	ids := ev.BugIDs()
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Printf("  covered bug: %s\n", id)
	}

	if d, isHD := det.(*core.Doctor); isHD {
		fmt.Println("\nresponsiveness dashboard:")
		fmt.Print(d.Telemetry().Render())
		fmt.Println("\nHang Bug Report:")
		fmt.Print(d.Report().Render())
		if *showTransitions {
			fmt.Println("\nstate transitions:")
			for _, tr := range d.Transitions() {
				fmt.Printf("  %-40s %-10s %v -> %v (exec %d)\n", tr.ActionUID, tr.Phase, tr.From, tr.To, tr.ExecSeq)
			}
		}
	}
	if *offline {
		fmt.Println("\noffline scanner findings:")
		findings := detect.OfflineScan(a, c.Registry)
		if len(findings) == 0 {
			fmt.Println("  (none)")
		}
		for _, f := range findings {
			tag := ""
			if f.Op.Bug != nil {
				tag = "  [seeded bug " + f.Op.Bug.ID + "]"
			}
			fmt.Printf("  %s calls %s%s\n", f.Action.UID, f.API.Key(), tag)
		}
	}
}

// buildDetector resolves a detector name, calibrating UT thresholds when
// needed.
func buildDetector(name string, a *app.App, dev app.Device, seed uint64, trace []*app.Action) (detect.Detector, error) {
	switch name {
	case "hd":
		return core.New(core.Config{}), nil
	case "ti":
		return detect.NewTimeout(detect.PerceivableDelay), nil
	case "utl", "uth", "utl+ti", "uth+ti":
		low, high, err := detect.CalibrateUT(a, dev, seed+77, trace)
		if err != nil {
			return nil, fmt.Errorf("calibrating UT thresholds: %w", err)
		}
		switch name {
		case "utl":
			return detect.NewUtilization("UTL", low, false, 0), nil
		case "uth":
			return detect.NewUtilization("UTH", high, false, 0), nil
		case "utl+ti":
			return detect.NewUtilization("UTL", low, true, 0), nil
		default:
			return detect.NewUtilization("UTH", high, true, 0), nil
		}
	default:
		return nil, fmt.Errorf("unknown detector %q", name)
	}
}
