// Command chaos is the fault-injection sweep harness: it runs Hang Doctor
// over corpus apps while the simulated measurement plane fails at a
// configurable rate, and prints how precision, recall, and overhead degrade
// as the faults ramp up. The property it demonstrates is graceful
// degradation: missing data defers verdicts (bounded recall loss) instead
// of fabricating them (no new false positives relative to the fault-free
// baseline).
//
// Usage:
//
//	chaos                                    # default sweep, stack-miss fault
//	chaos -fault all -rates 0,0.25,0.5,1     # every fault kind at once
//	chaos -apps K9-Mail -n 200 -seed 7       # one app, longer trace
//
// Fault kinds: open (perf-session open failure), counter (per-event dropout
// mid-window), render (render-thread counters unavailable), stack
// (stack-sample miss), trunc (stack truncation), overrun (late sampler
// ticks), worker (pool-worker stack loss — sweep async-slice apps such as
// -apps NewsBurst,GeoTracker to see causal attribution degrade), all (every
// kind at the same rate).
//
// A second mode sweeps the storage plane instead of the measurement plane:
//
//	chaos -storage torn -rates 0,0.05,0.1     # torn writes under crash recovery
//	chaos -storage all                        # torn + fsync + disk-full together
//
// A third mode drives the virtual-time fleet simulation engine
// (internal/sim) into a durable aggregator whose WAL sits on a
// fault-injected filesystem — fleet-scale load meeting a sick disk:
//
//	chaos -fleetscale torn -rates 0,0.1,0.5   # engine vs torn WAL appends
//	chaos -fleetscale all                     # torn + fsync + disk-full
//
// Each fleetscale cell asserts the ack contract under load: uploads whose
// merge was acknowledged survive a close/reopen byte-identically, failed
// appends surface as ack errors (engine Failed count), and the rate-0
// cell folds byte-identical to a clean in-memory reference run.
//
// Each storage cell runs a durable fleet aggregator against a fault-injected
// WAL, kills it at a random point mid-load, recovers the directory, and
// asserts the recovery contract: every acknowledged upload survives, and
// resending the unacknowledged ones converges byte-identically to an
// unbroken run. Storage kinds: torn (partial appends), fsync (failed
// barriers), full (ENOSPC), short (short reads during replay), corrupt
// (bit rot during replay — detection is asserted, loss is legitimate),
// all (the three write faults together).
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/core"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/detect"
	"hangdoctor/internal/fault"
	"hangdoctor/internal/fleet"
	"hangdoctor/internal/obs"
	"hangdoctor/internal/sim"
	"hangdoctor/internal/simclock"
	"hangdoctor/internal/simrand"
)

func ratesFor(kind string, rate float64) (fault.Rates, error) {
	switch kind {
	case "open":
		return fault.Rates{PerfOpenFail: rate}, nil
	case "counter":
		return fault.Rates{CounterDrop: rate}, nil
	case "render":
		return fault.Rates{RenderLoss: rate}, nil
	case "stack":
		return fault.Rates{StackMiss: rate}, nil
	case "trunc":
		return fault.Rates{StackTruncate: rate}, nil
	case "overrun":
		return fault.Rates{SamplerOverrun: rate}, nil
	case "worker":
		return fault.Rates{WorkerStackMiss: rate}, nil
	case "all":
		return fault.Rates{
			PerfOpenFail: rate, CounterDrop: rate, RenderLoss: rate,
			StackMiss: rate, StackTruncate: rate, SamplerOverrun: rate,
			WorkerStackMiss: rate,
		}, nil
	}
	return fault.Rates{}, fmt.Errorf("unknown fault kind %q (want open|counter|render|stack|trunc|overrun|worker|all)", kind)
}

// sweepRow aggregates one fault rate across all apps.
type sweepRow struct {
	rate     float64
	tp, fp   int
	fn       int
	overhead float64 // mean across apps, percent
	health   core.Health
}

func (r sweepRow) precision() float64 {
	if r.tp+r.fp == 0 {
		return 1
	}
	return float64(r.tp) / float64(r.tp+r.fp)
}

func (r sweepRow) recall() float64 {
	if r.tp+r.fn == 0 {
		return 0
	}
	return float64(r.tp) / float64(r.tp+r.fn)
}

func main() {
	appsFlag := flag.String("apps", "K9-Mail,QKSMS,Omni-Notes", "comma-separated corpus apps to sweep")
	n := flag.Int("n", 150, "actions per trace")
	seed := flag.Uint64("seed", 11, "base seed (trace, session, and faults derive from it)")
	kind := flag.String("fault", "stack", "fault kind: open|counter|render|stack|trunc|overrun|worker|all")
	ratesFlag := flag.String("rates", "0,0.1,0.25,0.5,0.75,1", "comma-separated fault rates to sweep")
	storage := flag.String("storage", "", "sweep the storage plane instead: torn|fsync|full|short|corrupt|all")
	uploadsFlag := flag.Int("uploads", 48, "durable uploads per storage-sweep cell")
	fleetscale := flag.String("fleetscale", "", "drive the fleet simulation engine against a durable WAL under write faults: torn|fsync|full|all")
	fleetDevices := flag.Int("fleet-devices", 2000, "devices in each -fleetscale cell")
	fleetUploads := flag.Int64("fleet-uploads", 10_000, "uploads in each -fleetscale cell")
	flag.Parse()

	var rates []float64
	for _, s := range strings.Split(*ratesFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v < 0 || v > 1 {
			fmt.Fprintf(os.Stderr, "bad rate %q: want a number in [0,1]\n", s)
			os.Exit(2)
		}
		rates = append(rates, v)
	}
	if *storage != "" {
		runStorageSweep(*storage, rates, *seed, *uploadsFlag)
		return
	}
	if *fleetscale != "" {
		runFleetscaleSweep(*fleetscale, rates, *seed, *fleetDevices, *fleetUploads)
		return
	}
	apps := strings.Split(*appsFlag, ",")

	rows := make([]sweepRow, 0, len(rates))
	// Every (app, rate) cell's Doctor registry merges into one sweep-wide
	// metrics view, printed at exit.
	var cellSnaps []obs.Snapshot
	for _, rate := range rates {
		fr, err := ratesFor(*kind, rate)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		row := sweepRow{rate: rate}
		for ai, name := range apps {
			name = strings.TrimSpace(name)
			// A fresh corpus per run isolates the known-blocking feedback
			// loop between configurations.
			c := corpus.Build()
			a := c.MustApp(name)
			d := core.New(core.Config{})
			h, err := detect.NewHarness(a, app.LGV10(), *seed, d)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			// Each (app, rate) cell gets its own fault stream so cells are
			// independently reproducible.
			h.Session.SetFaults(fault.New(*seed+uint64(ai)*1000003, fr))
			h.Run(corpus.Trace(a, *seed, *n), simclock.Second)
			ev := h.Evaluate(d)
			row.tp += ev.TP
			row.fp += ev.FP
			row.fn += ev.FN
			row.overhead += h.Overhead(d).Avg() / float64(len(apps))
			hl := d.Health()
			row.health.Add(hl)
			cellSnaps = append(cellSnaps, d.Metrics())
		}
		rows = append(rows, row)
	}

	fmt.Printf("chaos sweep: fault=%s apps=%s n=%d seed=%d\n\n", *kind, *appsFlag, *n, *seed)
	fmt.Printf("%6s %5s %5s %5s %10s %7s %9s %9s %8s %8s %11s\n",
		"rate", "TP", "FP", "FN", "precision", "recall", "overhead%", "deferred", "lowconf", "quarant", "newFP-vs-0")
	base := rows[0]
	for _, r := range rows {
		fmt.Printf("%6.2f %5d %5d %5d %10.2f %7.2f %9.2f %9d %8d %8d %11d\n",
			r.rate, r.tp, r.fp, r.fn, r.precision(), r.recall(), r.overhead,
			r.health.VerdictsDeferred, r.health.LowConfidence, r.health.Quarantines,
			r.fp-base.fp)
	}
	fmt.Printf("\nhealth at max rate: %s\n", rows[len(rows)-1].health)

	fmt.Printf("\nsweep metrics (all %d cells merged):\n%s",
		len(cellSnaps), obs.MergeSnapshots(cellSnaps...).Summary())

	// Graceful-degradation contract: faults must never create detections the
	// perfect plane would not have made.
	for _, r := range rows[1:] {
		if r.fp > base.fp {
			fmt.Fprintf(os.Stderr, "\nFAIL: fault rate %.2f produced %d new false positives\n", r.rate, r.fp-base.fp)
			os.Exit(1)
		}
	}
	fmt.Println("OK: no fault rate produced new false positives")
}

// ---------------------------------------------------------------------------
// Storage-plane sweep

func storageRatesFor(kind string, rate float64) (fault.StorageRates, error) {
	switch kind {
	case "torn":
		return fault.StorageRates{TornWrite: rate}, nil
	case "fsync":
		return fault.StorageRates{FsyncFail: rate}, nil
	case "full":
		return fault.StorageRates{DiskFull: rate}, nil
	case "short":
		return fault.StorageRates{ShortRead: rate}, nil
	case "corrupt":
		return fault.StorageRates{CorruptRead: rate}, nil
	case "all":
		// The write faults together; read faults have their own cells
		// because their assertions differ.
		return fault.StorageRates{TornWrite: rate, FsyncFail: rate, DiskFull: rate}, nil
	}
	return fault.StorageRates{}, fmt.Errorf("unknown storage fault kind %q (want torn|fsync|full|short|corrupt|all)", kind)
}

// storageCell is one (kind, rate) crash-recovery round's outcome.
type storageCell struct {
	rate      float64
	acked     int // uploads acknowledged before the crash
	lostAcked int // acked uploads missing after recovery — must be 0
	identical bool
	stats     fault.StorageStats
	replayed  int64
	truncated int64
	corrupt   int64
}

// runStorageSweep kills a durable aggregator mid-load at every fault rate
// and verifies the recovery contract. Write faults (torn, fsync, full) are
// injected during the loaded run with recovery on a clean FS; read faults
// (short, corrupt) invert that, stressing replay instead of append.
func runStorageSweep(kind string, rates []float64, seed uint64, uploads int) {
	readFault := kind == "short" || kind == "corrupt"
	fmt.Printf("chaos storage sweep: fault=%s uploads=%d seed=%d\n\n", kind, uploads, seed)
	fmt.Printf("%6s %7s %10s %10s %9s %9s %8s %10s\n",
		"rate", "acked", "lost-acked", "injected", "replayed", "truncated", "corrupt", "identical")
	failed := false
	for ri, rate := range rates {
		sr, err := storageRatesFor(kind, rate)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cell, err := storageRound(sr, readFault, seed+uint64(ri)*7919, uploads)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL: rate %.2f: %v\n", rate, err)
			os.Exit(1)
		}
		cell.rate = rate
		injected := cell.stats.TornWrites + cell.stats.FsyncFails + cell.stats.DiskFulls +
			cell.stats.ShortReads + cell.stats.CorruptReads
		fmt.Printf("%6.2f %7d %10d %10d %9d %9d %8d %10v\n",
			cell.rate, cell.acked, cell.lostAcked, injected,
			cell.replayed, cell.truncated, cell.corrupt, cell.identical)
		// Bit rot (corrupt) legitimately loses data — the assertion there is
		// detection without panic or abort; every other kind must be lossless.
		if kind != "corrupt" && (cell.lostAcked > 0 || !cell.identical) {
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "\nFAIL: recovery lost acknowledged uploads or diverged from the unbroken run")
		os.Exit(1)
	}
	if kind == "corrupt" {
		fmt.Println("\nOK: replay detected every injected corruption without panicking or aborting")
		return
	}
	fmt.Println("\nOK: no fault rate lost an acknowledged upload; recovery+resend is byte-identical")
}

// storageRound runs one crash-recovery differential and checks it.
func storageRound(sr fault.StorageRates, readFault bool, seed uint64, uploads int) (storageCell, error) {
	var cell storageCell
	dir, err := os.MkdirTemp("", "chaos-wal-")
	if err != nil {
		return cell, err
	}
	defer os.RemoveAll(dir)

	rng := simrand.New(seed).Derive("chaos/storage")
	reps := make([]*core.Report, uploads)
	ids := make([]fleet.UploadID, uploads)
	serial := core.NewReport()
	for i := range reps {
		reps[i] = fleet.SyntheticUpload(int64(seed)+int64(i), fmt.Sprintf("device-%04d", i), 25)
		if ids[i], err = fleet.ReportUploadID(reps[i]); err != nil {
			return cell, err
		}
		serial.Merge(reps[i].Clone())
	}
	want, err := exportReport(serial)
	if err != nil {
		return cell, err
	}

	in := fault.NewStorage(seed, sr)
	loadFS, recoverFS := fault.FaultyFS(fault.DiskFS, in), fault.FS(nil)
	if readFault {
		loadFS, recoverFS = nil, fault.FaultyFS(fault.DiskFS, in)
	}

	walCfg := func(fs fault.FS) fleet.Config {
		return fleet.Config{
			Shards: 4, QueueDepth: 256, BatchSize: 4,
			WAL: &fleet.WALConfig{Dir: dir, Sync: fleet.SyncBatch, CompactEvery: 8, FS: fs},
		}
	}

	// Startup writes through the faulty FS too; retry like a supervisor
	// restarting fleetd on a sick disk (the fault streams continue, so a
	// retry is a fresh draw, not a replay of the same refusal).
	agg, err := openRetry(walCfg(loadFS), 100)
	if err != nil {
		return cell, fmt.Errorf("open under injection: %w", err)
	}

	// Load concurrently and crash at a random acknowledgement count.
	crashAt := int64(1 + rng.Intn(uploads-1))
	var ackCount atomic.Int64
	acked := make([]atomic.Bool, uploads)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				err := agg.SubmitDurable(reps[i].Clone(), ids[i])
				for errors.Is(err, fleet.ErrQueueFull) {
					err = agg.SubmitDurable(reps[i].Clone(), ids[i])
				}
				if err == nil {
					acked[i].Store(true)
					if ackCount.Add(1) == crashAt {
						go agg.Crash()
					}
				}
			}
		}()
	}
	for i := range reps {
		work <- i
	}
	close(work)
	wg.Wait()
	agg.Crash()
	cell.acked = int(ackCount.Load())

	// Recover. Under read faults recovery itself is the system under test:
	// it must never panic; refusing a corrupted snapshot is legitimate, so
	// retry until the fault streams let a replay through.
	recovered, err := openRetry(walCfg(recoverFS), 100)
	if err != nil {
		return cell, fmt.Errorf("recovery: %w", err)
	}

	folded := recovered.Fold()
	for i := range reps {
		if acked[i].Load() && !reportContains(folded, reps[i]) {
			cell.lostAcked++
		}
	}

	// Resend everything unacknowledged (dedup makes over-sending safe) on a
	// clean FS and compare against the unbroken run.
	for i := range reps {
		if !acked[i].Load() {
			if err := recovered.SubmitDurable(reps[i].Clone(), ids[i]); err != nil {
				recovered.Close()
				return cell, fmt.Errorf("resend %d: %w", i, err)
			}
		}
	}
	recovered.Close()
	got, err := exportReport(recovered.Fold())
	if err != nil {
		return cell, err
	}
	cell.identical = bytes.Equal(got, want)
	cell.stats = in.Stats()
	msnap := recovered.Metrics().Registry().Snapshot()
	cell.replayed = msnap.Value("hangdoctor_fleet_wal_replayed_records_total")
	cell.truncated = msnap.Value("hangdoctor_fleet_wal_truncated_tails_total")
	cell.corrupt = msnap.Value("hangdoctor_fleet_wal_corrupt_records_total")
	return cell, nil
}

// ---------------------------------------------------------------------------
// Fleetscale sweep: the simulation engine against a faulty durable WAL

// runFleetscaleSweep runs the full fleet simulation engine into a durable
// aggregator whose WAL writes through a fault-injected filesystem, one
// cell per rate. The contract under fleet-scale load: append failures
// surface as ack errors (the engine's Failed count — never silent loss),
// whatever the aggregator acknowledged survives a close/reopen
// byte-identically, and the fault-free cell is byte-identical to a clean
// in-memory reference run of the same seed.
func runFleetscaleSweep(kind string, rates []float64, seed uint64, devices int, uploads int64) {
	switch kind {
	case "torn", "fsync", "full", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown fleetscale fault kind %q (want torn|fsync|full|all)\n", kind)
		os.Exit(2)
	}
	simCfg := func() sim.Config {
		return sim.Config{
			Devices: devices,
			Uploads: uploads,
			Entries: 4,
			Workers: 4,
			Seed:    int64(seed),
		}
	}

	// The clean reference: same fleet, no WAL, no faults.
	refAgg := fleet.NewAggregator(fleet.Config{Shards: 4})
	cfg := simCfg()
	cfg.Agg = refAgg
	eng, err := sim.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	refStats, err := eng.Run()
	if err != nil || refStats.Failed != 0 {
		fmt.Fprintf(os.Stderr, "FAIL: clean reference run: err=%v stats=%s\n", err, refStats)
		os.Exit(1)
	}
	refAgg.Close()
	want, err := exportReport(refAgg.Fold())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("chaos fleetscale sweep: fault=%s devices=%d uploads=%d seed=%d\n\n", kind, devices, uploads, seed)
	fmt.Printf("%6s %9s %8s %11s %9s %12s\n",
		"rate", "delivered", "failed", "append-errs", "reopened", "clean-ident")
	failed := false
	for ri, rate := range rates {
		sr, err := storageRatesFor(kind, rate)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		dir, err := os.MkdirTemp("", "chaos-fleetscale-")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		in := fault.NewStorage(seed+uint64(ri)*7919, sr)
		walCfg := func(fs fault.FS) fleet.Config {
			return fleet.Config{
				Shards: 4, QueueDepth: 256, BatchSize: 4,
				WAL: &fleet.WALConfig{Dir: dir, Sync: fleet.SyncBatch, CompactEvery: 16, FS: fs},
			}
		}
		agg, err := openRetry(walCfg(fault.FaultyFS(fault.DiskFS, in)), 100)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL: rate %.2f: open under injection: %v\n", rate, err)
			os.Exit(1)
		}
		cfg := simCfg()
		cfg.Agg = agg
		eng, err := sim.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st, err := eng.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL: rate %.2f: engine run: %v\n", rate, err)
			os.Exit(1)
		}
		agg.Close()
		pre, err := exportReport(agg.Fold())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		appendErrs := agg.Metrics().Registry().Snapshot().Value("hangdoctor_fleet_wal_append_errors_total")

		// Reopen on a clean filesystem: recovery must reproduce exactly the
		// state the aggregator acknowledged and folded before closing.
		recovered, err := openRetry(walCfg(nil), 10)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL: rate %.2f: reopen: %v\n", rate, err)
			os.Exit(1)
		}
		recovered.Close()
		got, err := exportReport(recovered.Fold())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.RemoveAll(dir)

		reopened := bytes.Equal(got, pre)
		cleanIdent := rate > 0 || (st.Failed == 0 && bytes.Equal(pre, want))
		fmt.Printf("%6.2f %9d %8d %11d %9v %12v\n",
			rate, st.Uploads, st.Failed, appendErrs, reopened,
			map[bool]string{true: "ok", false: "MISMATCH"}[cleanIdent])
		if st.Uploads+st.Failed != uploads || !reopened || !cleanIdent {
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "\nFAIL: fleetscale sweep lost uploads silently, diverged on reopen, or missed the clean reference")
		os.Exit(1)
	}
	fmt.Println("\nOK: every upload acked or failed loudly; reopen is byte-identical; rate 0 matches the clean reference")
}

func openRetry(cfg fleet.Config, attempts int) (*fleet.Aggregator, error) {
	agg, err := fleet.Open(cfg)
	for i := 0; err != nil && i < attempts; i++ {
		agg, err = fleet.Open(cfg)
	}
	return agg, err
}

func exportReport(rep *core.Report) ([]byte, error) {
	var buf bytes.Buffer
	if err := rep.Export(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// reportContains reports whether every entry of sub is accounted for in
// super with counts at least as large (Merge only ever adds).
func reportContains(super, sub *core.Report) bool {
	byKey := make(map[string]*core.ReportEntry, super.Len())
	for _, e := range super.Entries() {
		byKey[e.App+"\x00"+e.ActionUID+"\x00"+e.RootCause] = e
	}
	for _, e := range sub.Entries() {
		se, ok := byKey[e.App+"\x00"+e.ActionUID+"\x00"+e.RootCause]
		if !ok || se.Hangs < e.Hangs || se.SumResponse < e.SumResponse ||
			se.MaxResponse < e.MaxResponse {
			return false
		}
	}
	return true
}
