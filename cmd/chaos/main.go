// Command chaos is the fault-injection sweep harness: it runs Hang Doctor
// over corpus apps while the simulated measurement plane fails at a
// configurable rate, and prints how precision, recall, and overhead degrade
// as the faults ramp up. The property it demonstrates is graceful
// degradation: missing data defers verdicts (bounded recall loss) instead
// of fabricating them (no new false positives relative to the fault-free
// baseline).
//
// Usage:
//
//	chaos                                    # default sweep, stack-miss fault
//	chaos -fault all -rates 0,0.25,0.5,1     # every fault kind at once
//	chaos -apps K9-Mail -n 200 -seed 7       # one app, longer trace
//
// Fault kinds: open (perf-session open failure), counter (per-event dropout
// mid-window), render (render-thread counters unavailable), stack
// (stack-sample miss), trunc (stack truncation), overrun (late sampler
// ticks), all (every kind at the same rate).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hangdoctor/internal/android/app"
	"hangdoctor/internal/core"
	"hangdoctor/internal/corpus"
	"hangdoctor/internal/detect"
	"hangdoctor/internal/fault"
	"hangdoctor/internal/obs"
	"hangdoctor/internal/simclock"
)

func ratesFor(kind string, rate float64) (fault.Rates, error) {
	switch kind {
	case "open":
		return fault.Rates{PerfOpenFail: rate}, nil
	case "counter":
		return fault.Rates{CounterDrop: rate}, nil
	case "render":
		return fault.Rates{RenderLoss: rate}, nil
	case "stack":
		return fault.Rates{StackMiss: rate}, nil
	case "trunc":
		return fault.Rates{StackTruncate: rate}, nil
	case "overrun":
		return fault.Rates{SamplerOverrun: rate}, nil
	case "all":
		return fault.Rates{
			PerfOpenFail: rate, CounterDrop: rate, RenderLoss: rate,
			StackMiss: rate, StackTruncate: rate, SamplerOverrun: rate,
		}, nil
	}
	return fault.Rates{}, fmt.Errorf("unknown fault kind %q (want open|counter|render|stack|trunc|overrun|all)", kind)
}

// sweepRow aggregates one fault rate across all apps.
type sweepRow struct {
	rate     float64
	tp, fp   int
	fn       int
	overhead float64 // mean across apps, percent
	health   core.Health
}

func (r sweepRow) precision() float64 {
	if r.tp+r.fp == 0 {
		return 1
	}
	return float64(r.tp) / float64(r.tp+r.fp)
}

func (r sweepRow) recall() float64 {
	if r.tp+r.fn == 0 {
		return 0
	}
	return float64(r.tp) / float64(r.tp+r.fn)
}

func main() {
	appsFlag := flag.String("apps", "K9-Mail,QKSMS,Omni-Notes", "comma-separated corpus apps to sweep")
	n := flag.Int("n", 150, "actions per trace")
	seed := flag.Uint64("seed", 11, "base seed (trace, session, and faults derive from it)")
	kind := flag.String("fault", "stack", "fault kind: open|counter|render|stack|trunc|overrun|all")
	ratesFlag := flag.String("rates", "0,0.1,0.25,0.5,0.75,1", "comma-separated fault rates to sweep")
	flag.Parse()

	var rates []float64
	for _, s := range strings.Split(*ratesFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || v < 0 || v > 1 {
			fmt.Fprintf(os.Stderr, "bad rate %q: want a number in [0,1]\n", s)
			os.Exit(2)
		}
		rates = append(rates, v)
	}
	apps := strings.Split(*appsFlag, ",")

	rows := make([]sweepRow, 0, len(rates))
	// Every (app, rate) cell's Doctor registry merges into one sweep-wide
	// metrics view, printed at exit.
	var cellSnaps []obs.Snapshot
	for _, rate := range rates {
		fr, err := ratesFor(*kind, rate)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		row := sweepRow{rate: rate}
		for ai, name := range apps {
			name = strings.TrimSpace(name)
			// A fresh corpus per run isolates the known-blocking feedback
			// loop between configurations.
			c := corpus.Build()
			a := c.MustApp(name)
			d := core.New(core.Config{})
			h, err := detect.NewHarness(a, app.LGV10(), *seed, d)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			// Each (app, rate) cell gets its own fault stream so cells are
			// independently reproducible.
			h.Session.SetFaults(fault.New(*seed+uint64(ai)*1000003, fr))
			h.Run(corpus.Trace(a, *seed, *n), simclock.Second)
			ev := h.Evaluate(d)
			row.tp += ev.TP
			row.fp += ev.FP
			row.fn += ev.FN
			row.overhead += h.Overhead(d).Avg() / float64(len(apps))
			hl := d.Health()
			row.health.Add(hl)
			cellSnaps = append(cellSnaps, d.Metrics())
		}
		rows = append(rows, row)
	}

	fmt.Printf("chaos sweep: fault=%s apps=%s n=%d seed=%d\n\n", *kind, *appsFlag, *n, *seed)
	fmt.Printf("%6s %5s %5s %5s %10s %7s %9s %9s %8s %8s %11s\n",
		"rate", "TP", "FP", "FN", "precision", "recall", "overhead%", "deferred", "lowconf", "quarant", "newFP-vs-0")
	base := rows[0]
	for _, r := range rows {
		fmt.Printf("%6.2f %5d %5d %5d %10.2f %7.2f %9.2f %9d %8d %8d %11d\n",
			r.rate, r.tp, r.fp, r.fn, r.precision(), r.recall(), r.overhead,
			r.health.VerdictsDeferred, r.health.LowConfidence, r.health.Quarantines,
			r.fp-base.fp)
	}
	fmt.Printf("\nhealth at max rate: %s\n", rows[len(rows)-1].health)

	fmt.Printf("\nsweep metrics (all %d cells merged):\n%s",
		len(cellSnaps), obs.MergeSnapshots(cellSnaps...).Summary())

	// Graceful-degradation contract: faults must never create detections the
	// perfect plane would not have made.
	for _, r := range rows[1:] {
		if r.fp > base.fp {
			fmt.Fprintf(os.Stderr, "\nFAIL: fault rate %.2f produced %d new false positives\n", r.rate, r.fp-base.fp)
			os.Exit(1)
		}
	}
	fmt.Println("OK: no fault rate produced new false positives")
}
