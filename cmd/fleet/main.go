// Command fleet is the developer-side half of the Hang Bug Report upload
// path: it reads anonymized JSON report documents (one per device, produced
// by (*Report).Export) from a directory, merges them, and prints the
// fleet-wide Hang Bug Report. Parsing runs on a bounded worker pool and the
// merge runs on the same sharded aggregator that backs fleetd, so a
// directory of thousands of uploads imports at multicore speed — with output
// byte-identical to the old serial merge (the shard fold is deterministic).
//
// Usage:
//
//	fleet -dir reports/          # merge reports/*.json
//	fleet -demo -dir out/        # generate a demo fleet's uploads first
//	fleet -dir reports/ -workers 16 -shards 8
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"hangdoctor"
	"hangdoctor/internal/core"
	"hangdoctor/internal/fleet"
)

func main() {
	dir := flag.String("dir", "", "directory of exported report JSON files")
	demo := flag.Bool("demo", false, "first simulate a small fleet and write its uploads into -dir")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel parse workers")
	shards := flag.Int("shards", 4, "merge shards")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: fleet -dir <reports-dir> [-demo] [-workers N] [-shards N]")
		os.Exit(2)
	}

	if *demo {
		if err := writeDemoUploads(*dir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	res, err := importDir(*dir, *workers, *shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, msg := range res.skipped {
		fmt.Fprintln(os.Stderr, msg)
	}
	if res.imported == 0 {
		fmt.Fprintf(os.Stderr, "all %d report files failed to parse\n", res.total)
		os.Exit(1)
	}
	fmt.Printf("merged %d of %d device reports (%d diagnosed hangs)\n\n", res.imported, res.total, res.fleet.TotalHangs())
	fmt.Print(res.fleet.Render())
}

// importResult is what a directory import produces: the folded fleet report
// plus deterministic bookkeeping for the CLI output.
type importResult struct {
	fleet    *core.Report
	imported int
	total    int
	// skipped holds one "skipping path: reason" line per bad file, in sorted
	// file order regardless of which worker hit it.
	skipped []string
}

// importDir parses every *.json upload in dir on a bounded worker pool and
// feeds the parsed reports through a sharded fleet.Aggregator. Errors are
// collected per file (indexed, so their order matches the sorted listing)
// and the fold is deterministic, keeping the output byte-identical to a
// serial import no matter the worker or shard counts.
func importDir(dir string, workers, shards int) (importResult, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return importResult{}, err
	}
	sort.Strings(paths)
	res := importResult{total: len(paths)}
	if len(paths) == 0 {
		return res, fmt.Errorf("no .json reports in %s (try -demo)", dir)
	}
	if workers < 1 {
		workers = 1
	}

	agg := fleet.NewAggregator(fleet.Config{Shards: shards, QueueDepth: 2 * workers})
	errs := make([]string, len(paths))
	var imported int
	var mu sync.Mutex
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				rep, err := importFile(paths[i])
				if err != nil {
					errs[i] = fmt.Sprintf("skipping %s: %v", paths[i], err)
					continue
				}
				if err := agg.SubmitWait(rep); err != nil {
					errs[i] = fmt.Sprintf("skipping %s: %v", paths[i], err)
					continue
				}
				mu.Lock()
				imported++
				mu.Unlock()
			}
		}()
	}
	for i := range paths {
		next <- i
	}
	close(next)
	wg.Wait()
	agg.Close()

	res.fleet = agg.Fold()
	res.imported = imported
	for _, e := range errs {
		if e != "" {
			res.skipped = append(res.skipped, e)
		}
	}
	return res, nil
}

func importFile(path string) (*core.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.ImportReport(f)
}

// writeDemoUploads simulates a handful of devices and writes their
// anonymized uploads.
func writeDemoUploads(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	c := hangdoctor.LoadCorpus()
	a := c.MustApp("AndStatus")
	for u := 0; u < 6; u++ {
		dev := hangdoctor.LGV10()
		dev.Name = fmt.Sprintf("device-%02d", u)
		sess, err := hangdoctor.NewSession(a, dev, uint64(500+u))
		if err != nil {
			return err
		}
		doctor := hangdoctor.Monitor(sess, hangdoctor.Config{})
		hangdoctor.RunTrace(sess, hangdoctor.Trace(a, uint64(500+u), 150), hangdoctor.Second)
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("device-%02d.json", u)))
		if err != nil {
			return err
		}
		err = doctor.Report().Anonymize("demo-salt").Export(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	fmt.Printf("wrote 6 demo uploads to %s\n", dir)
	return nil
}
