// Command fleet is the developer-side half of the Hang Bug Report upload
// path: it reads anonymized JSON report documents (one per device, produced
// by (*Report).Export) from a directory, merges them order-independently,
// and prints the fleet-wide Hang Bug Report.
//
// Usage:
//
//	fleet -dir reports/          # merge reports/*.json
//	fleet -demo -dir out/        # generate a demo fleet's uploads first
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"hangdoctor"
	"hangdoctor/internal/core"
)

func main() {
	dir := flag.String("dir", "", "directory of exported report JSON files")
	demo := flag.Bool("demo", false, "first simulate a small fleet and write its uploads into -dir")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: fleet -dir <reports-dir> [-demo]")
		os.Exit(2)
	}

	if *demo {
		if err := writeDemoUploads(*dir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	entries, err := filepath.Glob(filepath.Join(*dir, "*.json"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sort.Strings(entries)
	if len(entries) == 0 {
		fmt.Fprintf(os.Stderr, "no .json reports in %s (try -demo)\n", *dir)
		os.Exit(1)
	}
	fleet := core.NewReport()
	imported := 0
	for _, path := range entries {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep, err := core.ImportReport(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipping %s: %v\n", path, err)
			continue
		}
		fleet.Merge(rep)
		imported++
	}
	if imported == 0 {
		fmt.Fprintf(os.Stderr, "all %d report files failed to parse\n", len(entries))
		os.Exit(1)
	}
	fmt.Printf("merged %d of %d device reports (%d diagnosed hangs)\n\n", imported, len(entries), fleet.TotalHangs())
	fmt.Print(fleet.Render())
}

// writeDemoUploads simulates a handful of devices and writes their
// anonymized uploads.
func writeDemoUploads(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	c := hangdoctor.LoadCorpus()
	a := c.MustApp("AndStatus")
	for u := 0; u < 6; u++ {
		dev := hangdoctor.LGV10()
		dev.Name = fmt.Sprintf("device-%02d", u)
		sess, err := hangdoctor.NewSession(a, dev, uint64(500+u))
		if err != nil {
			return err
		}
		doctor := hangdoctor.Monitor(sess, hangdoctor.Config{})
		hangdoctor.RunTrace(sess, hangdoctor.Trace(a, uint64(500+u), 150), hangdoctor.Second)
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("device-%02d.json", u)))
		if err != nil {
			return err
		}
		err = doctor.Report().Anonymize("demo-salt").Export(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	fmt.Printf("wrote 6 demo uploads to %s\n", dir)
	return nil
}
