package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"hangdoctor/internal/core"
	"hangdoctor/internal/fleet"
)

// writeUploadDir fills a temp directory with synthetic device uploads plus
// one corrupt file, returning the directory and the valid reports in sorted
// file order.
func writeUploadDir(t *testing.T, n int) (string, []*core.Report) {
	t.Helper()
	dir := t.TempDir()
	reps := make([]*core.Report, n)
	for i := range reps {
		reps[i] = fleet.SyntheticUpload(int64(40+i), fmt.Sprintf("device-%03d", i), 35)
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("device-%03d.json", i)))
		if err != nil {
			t.Fatal(err)
		}
		err = reps[i].Export(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "zz-corrupt.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, reps
}

// TestImportDirMatchesSerialMerge: the parallel worker-pool import through
// the shard layer must produce byte-identical output to the old serial
// loop, for any worker and shard count.
func TestImportDirMatchesSerialMerge(t *testing.T) {
	dir, reps := writeUploadDir(t, 12)
	serial := core.NewReport()
	serial.Merge(reps...)
	var want bytes.Buffer
	if err := serial.Export(&want); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4, 9} {
		for _, shards := range []int{1, 5} {
			t.Run(fmt.Sprintf("workers=%d/shards=%d", workers, shards), func(t *testing.T) {
				res, err := importDir(dir, workers, shards)
				if err != nil {
					t.Fatal(err)
				}
				if res.imported != 12 || res.total != 13 {
					t.Errorf("imported %d of %d, want 12 of 13", res.imported, res.total)
				}
				if len(res.skipped) != 1 || !bytes.Contains([]byte(res.skipped[0]), []byte("zz-corrupt.json")) {
					t.Errorf("skipped = %v, want only the corrupt file", res.skipped)
				}
				var got bytes.Buffer
				if err := res.fleet.Export(&got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got.Bytes(), want.Bytes()) {
					t.Error("parallel import diverged from serial merge")
				}
				if res.fleet.Render() != serial.Render() {
					t.Error("rendered fleet report diverged from serial merge")
				}
			})
		}
	}
}

// TestImportDirSkipOrderDeterministic: error lines come out in sorted file
// order no matter which worker hit them.
func TestImportDirSkipOrderDeterministic(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"a.json", "m.json", "z.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("broken"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	res, err := importDir(dir, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.imported != 0 || len(res.skipped) != 3 {
		t.Fatalf("imported=%d skipped=%d, want 0/3", res.imported, len(res.skipped))
	}
	if !sort.SliceIsSorted(res.skipped, func(i, j int) bool { return res.skipped[i] < res.skipped[j] }) {
		t.Errorf("skip messages not in sorted file order: %v", res.skipped)
	}
}
