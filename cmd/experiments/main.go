// Command experiments regenerates the paper's tables and figures on the
// simulated corpus.
//
// Usage:
//
//	experiments [-run name[,name...]] [-seed N] [-scale small|full] [-list]
//
// With no -run flag it regenerates everything in paper order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hangdoctor/internal/experiments"
)

func main() {
	runFlag := flag.String("run", "", "comma-separated experiment names (default: all)")
	seed := flag.Uint64("seed", 42, "deterministic experiment seed")
	scaleFlag := flag.String("scale", "full", "workload scale: small or full")
	list := flag.Bool("list", false, "list experiment names and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Println(e.Name)
		}
		return
	}

	scale := experiments.FullScale()
	switch *scaleFlag {
	case "full":
	case "small":
		scale = experiments.SmallScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want small or full)\n", *scaleFlag)
		os.Exit(2)
	}

	var names []string
	if *runFlag == "" {
		for _, e := range experiments.Registry() {
			names = append(names, e.Name)
		}
	} else {
		names = strings.Split(*runFlag, ",")
	}

	ctx := experiments.NewContext(*seed, scale)
	for _, name := range names {
		start := time.Now()
		res, err := experiments.Run(ctx, strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		fmt.Printf("[%s regenerated in %v]\n\n", res.Name(), time.Since(start).Round(time.Millisecond))
	}
}
