// Command experiments regenerates the paper's tables and figures on the
// simulated corpus.
//
// Usage:
//
//	experiments [-run name[,name...]] [-seed N] [-scale small|full]
//	            [-parallel N] [-cpuprofile file] [-memprofile file] [-list]
//
// With no -run flag it regenerates everything in paper order. -parallel
// bounds the experiment engine's worker pool (0 = one worker per CPU,
// 1 = serial); artifacts are byte-identical at every setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"hangdoctor/internal/experiments"
	"hangdoctor/internal/experiments/pool"
	"hangdoctor/internal/obs"
)

func main() {
	runFlag := flag.String("run", "", "comma-separated experiment names (default: all)")
	seed := flag.Uint64("seed", 42, "deterministic experiment seed")
	scaleFlag := flag.String("scale", "full", "workload scale: small or full")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = one per CPU, 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	list := flag.Bool("list", false, "list experiment names and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Println(e.Name)
		}
		return
	}

	scale := experiments.FullScale()
	switch *scaleFlag {
	case "full":
	case "small":
		scale = experiments.SmallScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want small or full)\n", *scaleFlag)
		os.Exit(2)
	}

	var names []string
	if *runFlag == "" {
		for _, e := range experiments.Registry() {
			names = append(names, e.Name)
		}
	} else {
		names = strings.Split(*runFlag, ",")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	// The worker pool reports into this registry; the summary prints after
	// the run. Rendered artifacts never read it, so they stay byte-identical
	// whether or not metrics are on.
	reg := obs.NewRegistry()
	pool.RegisterMetrics(reg)

	ctx := experiments.NewContext(*seed, scale)
	ctx.Parallel = *parallel
	for _, name := range names {
		start := time.Now()
		res, err := experiments.Run(ctx, strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		fmt.Printf("[%s regenerated in %v]\n\n", res.Name(), time.Since(start).Round(time.Millisecond))
	}
	fmt.Printf("engine metrics:\n%s", reg.Snapshot().Summary())

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle live-heap accounting before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
	}
}
