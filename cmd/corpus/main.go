// Command corpus inspects the simulated 114-app evaluation corpus: app
// metadata, seeded bugs with their offline visibility, and the
// known-blocking database.
//
// Usage:
//
//	corpus                 # summary
//	corpus -app K9-Mail    # one app in detail
//	corpus -bugs           # every seeded bug
//	corpus -blocking       # the known-blocking API database
package main

import (
	"flag"
	"fmt"
	"os"

	"hangdoctor/internal/corpus"
	"hangdoctor/internal/detect"
)

func main() {
	appName := flag.String("app", "", "show one app in detail")
	bugs := flag.Bool("bugs", false, "list every seeded bug")
	blocking := flag.Bool("blocking", false, "dump the known-blocking API database")
	flag.Parse()

	c := corpus.Build()

	switch {
	case *appName != "":
		a, ok := c.App(*appName)
		if !ok {
			fmt.Fprintf(os.Stderr, "no app %q\n", *appName)
			os.Exit(2)
		}
		fmt.Printf("%s (commit %s, %s, %s downloads)\n", a.Name, a.Commit, a.Category, a.Downloads)
		for _, act := range a.Actions {
			fmt.Printf("  action %-24s weight %.1f\n", act.Name, act.Weight)
			for _, op := range act.Ops() {
				kind := "op"
				if op.Bug != nil {
					kind = "BUG " + op.Bug.ID
				} else if op.IsUI(a.Registry) {
					kind = "ui"
				}
				fmt.Printf("    %-10s %-60s median main %v\n", kind, op.LeafKey(), op.Heavy.MainDuration())
			}
		}
		if len(a.Bugs) > 0 {
			fmt.Println("  offline scanner view:")
			found := map[string]bool{}
			for _, b := range detect.OfflineDetectedBugs(a, c.Registry) {
				found[b.ID] = true
			}
			for _, b := range a.Bugs {
				vis := "MISSED offline"
				if found[b.ID] {
					vis = "detected offline"
				}
				fmt.Printf("    %-36s %s — %s\n", b.ID, vis, b.Description)
			}
		}
	case *bugs:
		for _, b := range c.AllBugs() {
			mo := " "
			if !c.OfflineVisible(b) {
				mo = "M"
			}
			fmt.Printf("[%s] %-40s %-60s %s\n", mo, b.ID, b.RootCauseKey(), b.Description)
		}
	case *blocking:
		for _, k := range c.Registry.KnownBlocking() {
			fmt.Println(k)
		}
	default:
		fmt.Printf("corpus: %d apps (%d with seeded bugs, %d motivation, %d generated)\n",
			len(c.Apps), len(c.Table5), len(c.Motivation), len(c.Apps)-len(c.Table5)-len(c.Motivation))
		fmt.Printf("seeded bugs: %d (%d missed by offline detection)\n",
			len(c.Table5Bugs()), len(c.MissedOfflineBugs()))
		fmt.Printf("known-blocking APIs in database: %d\n", len(c.Registry.KnownBlocking()))
	}
}
