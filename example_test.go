package hangdoctor_test

import (
	"fmt"

	"hangdoctor"
)

// ExampleMonitor shows the core workflow: attach Hang Doctor to an app
// session, drive actions, and read the diagnosis.
func ExampleMonitor() {
	c := hangdoctor.LoadCorpus()
	k9 := c.MustApp("K9-Mail")
	sess, err := hangdoctor.NewSession(k9, hangdoctor.LGV10(), 42)
	if err != nil {
		panic(err)
	}
	doctor := hangdoctor.Monitor(sess, hangdoctor.Config{})

	openEmail := k9.MustAction("Open Email")
	for i := 0; i < 20; i++ {
		sess.Perform(openEmail)
		sess.Idle(hangdoctor.Second)
	}
	for _, det := range doctor.Detections() {
		fmt.Printf("%s at %s:%d\n", det.RootCause, det.File, det.Line)
	}
	// Output:
	// org.htmlcleaner.HtmlCleaner.clean at HtmlCleaner.java:25
}

// ExampleDoctor_State shows the Figure 3 state machine separating a bug
// action from a UI-heavy action.
func ExampleDoctor_State() {
	c := hangdoctor.LoadCorpus()
	k9 := c.MustApp("K9-Mail")
	sess, _ := hangdoctor.NewSession(k9, hangdoctor.LGV10(), 42)
	doctor := hangdoctor.Monitor(sess, hangdoctor.Config{})
	for i := 0; i < 15; i++ {
		sess.Perform(k9.MustAction("Open Email"))
		sess.Idle(hangdoctor.Second)
		sess.Perform(k9.MustAction("Folders"))
		sess.Idle(hangdoctor.Second)
	}
	fmt.Println("Open Email:", doctor.State("K9-Mail/Open Email"))
	fmt.Println("Folders:   ", doctor.State("K9-Mail/Folders"))
	// Output:
	// Open Email: HangBug
	// Folders:    Normal
}

// ExampleDefaultConditions prints the paper's S-Checker filter.
func ExampleDefaultConditions() {
	for _, c := range hangdoctor.DefaultConditions() {
		fmt.Printf("%s > %d\n", c.Event.Name(), c.Threshold)
	}
	// Output:
	// context-switches > 0
	// task-clock > 170000000
	// page-faults > 500
}
