#!/usr/bin/env python3
"""Gate and extract the simulation-engine benchmark matrix.

Usage: sim_bench_gate.py bench_sim.txt BENCH_sim.json

Parses `go test -bench BenchmarkSimEngine -benchmem` output and enforces:

  1. 0 allocs/op on the warm steady-state tick (tick and tick-http rows);
  2. worker scaling on the sched/ rows (scheduler + draw + entry fill,
     no sink): workers=8 over workers=1 must clear a core-count-aware
     bar — 5x with 8+ cores, 0.45x per core on smaller runners, and on
     a single core merely "sharding must not cost throughput";
  3. the headline end-to-end claim: inproc/workers=8 (engine into a
     sharded aggregator) at least 10x faster per upload than the
     baseline-pr7 row, a faithful replica of the single-heap scheduler
     this PR replaced.

Writes BENCH_sim.json with every parsed row plus the computed ratios.
"""

import json
import re
import sys

# The expected matrix. Go appends "-<GOMAXPROCS>" to benchmark names only
# when GOMAXPROCS > 1, and several row names themselves end in digits
# (baseline-pr7, workers=8), so the suffix is only stripped when doing so
# recovers a known name.
KNOWN = {"baseline-pr7", "tick", "tick-http"} | {
    f"{grp}/workers={w}" for grp in ("inproc", "sched") for w in (1, 2, 4, 8)
}


def parse(path):
    rows = {}
    cores = None
    for line in open(path):
        m = re.match(
            r"^BenchmarkSimEngine/(\S+)\s+\d+\s+(\d+(?:\.\d+)?) ns/op"
            r".*?(\d+) B/op\s+(\d+) allocs/op",
            line,
        )
        if not m:
            continue
        raw, ns, b, allocs = m.groups()
        name = raw
        if raw not in KNOWN:
            ms = re.match(r"^(.*)-(\d+)$", raw)
            if ms and ms.group(1) in KNOWN:
                name = ms.group(1)
                cores = int(ms.group(2))
        rows[name] = {
            "ns_per_op": float(ns),
            "bytes_per_op": int(b),
            "allocs_per_op": int(allocs),
        }
    return rows, cores


def main():
    src, dst = sys.argv[1], sys.argv[2]
    rows, cores = parse(src)
    assert rows, "no benchmark rows parsed"
    missing = KNOWN - set(rows)
    assert not missing, f"missing benchmark rows: {sorted(missing)}"
    if cores is None:
        cores = 1

    for name in ("tick", "tick-http"):
        r = rows[name]
        assert r["allocs_per_op"] == 0, f"warm {name} must be allocation-free: {r}"

    sched1 = rows["sched/workers=1"]["ns_per_op"]
    sched8 = rows["sched/workers=8"]["ns_per_op"]
    scaling = sched1 / sched8
    if cores >= 8:
        bar = 5.0
    elif cores >= 2:
        bar = 0.45 * cores
    else:
        bar = 0.75
    assert scaling >= bar, (
        f"sched workers=8 scaling {scaling:.2f}x below the {bar:.2f}x bar "
        f"({cores} cores)"
    )

    baseline = rows["baseline-pr7"]["ns_per_op"]
    engine = rows["inproc/workers=8"]["ns_per_op"]
    speedup = baseline / engine
    assert speedup >= 10, (
        f"inproc/workers=8 only {speedup:.1f}x over the PR 7 baseline, want 10x"
    )

    json.dump(
        {
            "version": 1,
            "cores": cores,
            "speedup_vs_baseline_pr7": round(speedup, 1),
            "sched_scaling_8v1": round(scaling, 2),
            "sched_scaling_bar": round(bar, 2),
            "benchmarks": rows,
        },
        open(dst, "w"),
        indent=2,
        sort_keys=True,
    )
    print(f"OK: {speedup:.1f}x vs baseline-pr7, sched 8v1 scaling {scaling:.2f}x "
          f"(bar {bar:.2f}x on {cores} cores), warm tick 0 allocs/op")


if __name__ == "__main__":
    main()
